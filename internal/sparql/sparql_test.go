package sparql

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func mustParse(t *testing.T, text string) *Query {
	t.Helper()
	q, err := ParseQuery(text)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestParseBasicSelect(t *testing.T) {
	q, err := ParseSelect(`
PREFIX ex: <http://e/>
SELECT ?who ?org WHERE {
  ?who ex:memberOf ?org .
  ?org a ex:Department .
}
LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q.Vars, []string{"who", "org"}) {
		t.Fatalf("vars = %v", q.Vars)
	}
	want := [][3]string{
		{"?who", "<http://e/memberOf>", "?org"},
		{"?org", "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>", "<http://e/Department>"},
	}
	if len(q.Groups) != 1 || !reflect.DeepEqual(q.Groups[0].Patterns, want) {
		t.Fatalf("groups = %+v", q.Groups)
	}
	if !q.HasLimit || q.Limit != 10 {
		t.Fatalf("limit = %d (has %t)", q.Limit, q.HasLimit)
	}
}

func TestParseSelectStar(t *testing.T) {
	q, err := ParseSelect(`SELECT * WHERE { ?s ?p ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Vars) != 0 {
		t.Fatal("SELECT * must leave Vars empty")
	}
	if len(q.Groups) != 1 || len(q.Groups[0].Patterns) != 1 ||
		q.Groups[0].Patterns[0] != [3]string{"?s", "?p", "?o"} {
		t.Fatalf("groups = %+v", q.Groups)
	}
}

func TestParseLiterals(t *testing.T) {
	q := mustParse(t, `
PREFIX ex: <http://e/>
SELECT ?x WHERE {
  ?x ex:name "Alice" .
  ?x ex:motto "vive la vie"@fr .
  ?x ex:age "42"^^<http://www.w3.org/2001/XMLSchema#int>
}`)
	pats := q.Groups[0].Patterns
	if pats[0][2] != `"Alice"` {
		t.Errorf("plain literal: %q", pats[0][2])
	}
	if pats[1][2] != `"vive la vie"@fr` {
		t.Errorf("lang literal: %q", pats[1][2])
	}
	if pats[2][2] != `"42"^^<http://www.w3.org/2001/XMLSchema#int>` {
		t.Errorf("typed literal: %q", pats[2][2])
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	q, err := ParseSelect(`prefix ex: <http://e/>
select distinct ?x where { ?x a ex:T } order by desc(?x) limit 3 offset 2`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Limit != 3 || q.Offset != 2 || !q.Distinct || len(q.Groups[0].Patterns) != 1 {
		t.Fatalf("q = %+v", q)
	}
	if len(q.OrderBy) != 1 || q.OrderBy[0].Var != "x" || !q.OrderBy[0].Desc {
		t.Fatalf("order = %+v", q.OrderBy)
	}
}

func TestParseComments(t *testing.T) {
	q := mustParse(t, `
# find everything
SELECT * WHERE {
  ?s ?p ?o . # any triple
}`)
	if len(q.Groups[0].Patterns) != 1 {
		t.Fatalf("q=%+v", q)
	}
}

func TestParseAsk(t *testing.T) {
	q := mustParse(t, `ASK { <a> <p> ?x }`)
	if q.Form != FormAsk || len(q.Groups[0].Patterns) != 1 {
		t.Fatalf("q = %+v", q)
	}
	q = mustParse(t, `ASK WHERE { <a> <p> ?x . FILTER(?x > 3) }`)
	if q.Form != FormAsk || len(q.Groups[0].Filters) != 1 {
		t.Fatalf("q = %+v", q)
	}
	if _, err := ParseSelect(`ASK { <a> <p> ?x }`); err == nil {
		t.Fatal("ParseSelect accepted an ASK query")
	}
}

func TestParseUnion(t *testing.T) {
	q := mustParse(t, `SELECT ?x WHERE {
  { ?x <p> <A> . FILTER(?x != <z>) }
  UNION { ?x <q> <B> }
  UNION { ?x <r> <C> . ?x <s> <D> }
}`)
	if len(q.Groups) != 3 {
		t.Fatalf("groups = %d", len(q.Groups))
	}
	if len(q.Groups[0].Filters) != 1 || len(q.Groups[2].Patterns) != 2 {
		t.Fatalf("groups = %+v", q.Groups)
	}
}

func TestParseFilterForms(t *testing.T) {
	cases := []string{
		`SELECT ?x WHERE { ?x <p> ?y . FILTER(?y > 3) }`,
		`SELECT ?x WHERE { ?x <p> ?y . FILTER(?y >= 3 && ?y < 10) }`,
		`SELECT ?x WHERE { ?x <p> ?y FILTER(?y = "a" || ?y != "b") }`,
		`SELECT ?x WHERE { ?x <p> ?y . FILTER(!(?y = 4)) }`,
		`SELECT ?x WHERE { ?x <p> ?y . FILTER regex(?y, "^a.*b$") }`,
		`SELECT ?x WHERE { ?x <p> ?y . FILTER regex(?y, "abc", "i") }`,
		`SELECT ?x WHERE { ?x <p> ?y . FILTER bound(?y) }`,
		`SELECT ?x WHERE { ?x <p> ?y . FILTER(bound(?y) && ?y = <http://e/v>) }`,
		`SELECT ?x WHERE { ?x <p> ?y . FILTER(?y <= 3.5) . ?x <q> ?z }`,
	}
	for _, text := range cases {
		q, err := ParseQuery(text)
		if err != nil {
			t.Errorf("%s: %v", text, err)
			continue
		}
		if len(q.Groups[0].Filters) == 0 {
			t.Errorf("%s: no filter parsed", text)
		}
	}
}

func TestParseOrderByMultipleKeys(t *testing.T) {
	q := mustParse(t, `SELECT * WHERE { ?s ?p ?o } ORDER BY ?s DESC(?o) ASC(?p)`)
	want := []OrderKey{{Var: "s"}, {Var: "o", Desc: true}, {Var: "p"}}
	if !reflect.DeepEqual(q.OrderBy, want) {
		t.Fatalf("order = %+v", q.OrderBy)
	}
}

// A prefixed datatype on a literal must expand to the full-IRI surface
// form the store uses — otherwise the pattern silently matches nothing.
func TestParsePrefixedDatatypeExpansion(t *testing.T) {
	q := mustParse(t, `PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
SELECT ?x WHERE { ?x <age> "42"^^xsd:int }`)
	if got := q.Groups[0].Patterns[0][2]; got != `"42"^^<http://www.w3.org/2001/XMLSchema#int>` {
		t.Fatalf("prefixed datatype not expanded: %q", got)
	}
	if _, err := ParseQuery(`SELECT ?x WHERE { ?x <age> "42"^^xsd:int }`); err == nil ||
		!strings.Contains(err.Error(), `undefined prefix "xsd"`) {
		t.Fatalf("undefined datatype prefix: %v", err)
	}
	// Same expansion inside FILTER constants, where the typed constant
	// must stay numeric.
	b := bindingOf(map[string]string{"a": `"42"^^<http://www.w3.org/2001/XMLSchema#int>`})
	q = mustParse(t, `PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
SELECT ?x WHERE { ?x <age> ?a . FILTER(?a = "42"^^xsd:int) }`)
	if !Eval(q.Groups[0].Filters[0], b) {
		t.Fatal("prefixed typed constant did not match the stored term")
	}
}

func TestParseDuplicateOffsetRejected(t *testing.T) {
	for _, text := range []string{
		`SELECT * WHERE { ?s ?p ?o } OFFSET 3 OFFSET 5`,
		`SELECT * WHERE { ?s ?p ?o } OFFSET 0 OFFSET 5`,
	} {
		if _, err := ParseQuery(text); err == nil || !strings.Contains(err.Error(), "duplicate OFFSET") {
			t.Errorf("%q: err = %v", text, err)
		}
	}
}

func TestParseOffsetBeforeLimit(t *testing.T) {
	q := mustParse(t, `SELECT * WHERE { ?s ?p ?o } OFFSET 5 LIMIT 2`)
	if q.Offset != 5 || !q.HasLimit || q.Limit != 2 {
		t.Fatalf("q = %+v", q)
	}
}

func TestParseLimitZeroMeansZeroRows(t *testing.T) {
	q := mustParse(t, `SELECT * WHERE { ?s ?p ?o } LIMIT 0`)
	if !q.HasLimit || q.Limit != 0 {
		t.Fatalf("LIMIT 0 must parse as an explicit zero limit: %+v", q)
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"no-select":        `WHERE { ?s ?p ?o }`,
		"no-where":         `SELECT ?s ( ?s ?p ?o )`,
		"empty-bgp":        `SELECT * WHERE { }`,
		"undefined-prefix": `SELECT * WHERE { ex:a ?p ?o }`,
		"trailing-filter":  `SELECT * WHERE { ?s ?p ?o } FILTER(?s > 3)`,
		"bad-limit":        `SELECT * WHERE { ?s ?p ?o } LIMIT many`,
		"bad-offset":       `SELECT * WHERE { ?s ?p ?o } OFFSET x`,
		"dup-limit":        `SELECT * WHERE { ?s ?p ?o } LIMIT 1 LIMIT 2`,
		"no-projection":    `SELECT WHERE { ?s ?p ?o }`,
		"dangling-pattern": `SELECT * WHERE { ?s ?p }`,
		"empty-union-tail": `SELECT * WHERE { { ?s ?p ?o } UNION }`,
		"union-then-bgp":   `SELECT * WHERE { { ?s ?p ?o } UNION { ?s ?q ?o } ?s ?r ?o }`,
		"order-no-key":     `SELECT * WHERE { ?s ?p ?o } ORDER BY`,
		"filter-no-paren":  `SELECT * WHERE { ?s ?p ?o . FILTER ?s }`,
		"regex-no-pattern": `SELECT * WHERE { ?s ?p ?o . FILTER regex(?s) }`,
		"bad-regex":        `SELECT * WHERE { ?s ?p ?o . FILTER regex(?s, "[") }`,
		"bad-regex-flag":   `SELECT * WHERE { ?s ?p ?o . FILTER regex(?s, "a", "x") }`,
	}
	for name, text := range bad {
		if _, err := ParseQuery(text); err == nil {
			t.Errorf("%s: accepted %q", name, text)
		}
	}
}

// Every rejected construct must fail with its documented message (the
// docs/SPARQL.md table is the contract).
func TestRejectedConstructMessages(t *testing.T) {
	cases := map[string]string{
		`SELECT * WHERE { ?s ?p ?o MINUS { ?s <q> ?r } }`:                       "MINUS is not supported",
		`SELECT * WHERE { GRAPH <g> { ?s ?p ?o } }`:                             "GRAPH is not supported",
		`SELECT * WHERE { SERVICE <e> { ?s ?p ?o } }`:                           "SERVICE is not supported",
		`SELECT * WHERE { ?s <a>/<b> ?o }`:                                      "property paths are not supported",
		`SELECT * WHERE { ?s <a>|<b> ?o }`:                                      "property paths are not supported",
		`SELECT * WHERE { ?s ^<a> ?o }`:                                         "property paths are not supported",
		`SELECT * WHERE { { SELECT ?s WHERE { ?s ?p ?o } } }`:                   "subqueries are not supported",
		`SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?s HAVING(?n > 1)`: "HAVING is not supported",
		`CONSTRUCT { ?s ?p ?o } WHERE { ?s ?p ?o }`:                             "only SELECT and ASK query forms are supported",
		`DESCRIBE <x>`:                                                              "only SELECT and ASK query forms are supported",
		`INSERT DATA { <s> <p> <o> }`:                                               "INSERT and DELETE are update operations; send them to the update endpoint",
		`DELETE WHERE { ?s <p> ?o }`:                                                "INSERT and DELETE are update operations; send them to the update endpoint",
		`SELECT * WHERE { ?s ?p ?o . FILTER(isBlank(?s)) }`:                         "FILTER function isblank is not supported",
		`SELECT * WHERE { ?s ?p ?o . FILTER EXISTS { ?s <q> ?r } }`:                 "FILTER needs a parenthesized expression",
		`SELECT * WHERE { ?s ?p ?o . { ?s <q> ?r } }`:                               "nested group patterns are not supported",
		`SELECT * WHERE { ?s ?p ?o UNION { ?s <q> ?r } }`:                           "UNION must combine braced groups",
		`SELECT * WHERE { ?s ?p ?o OPTIONAL { ?a <p> ?b OPTIONAL { ?b <q> ?c } } }`: "nested OPTIONAL is not supported",
		`SELECT * WHERE { ?s ?p ?o OPTIONAL { ?s <q> ?r BIND(1 AS ?x) } }`:          "BIND inside OPTIONAL is not supported",
		`SELECT * WHERE { ?s ?p ?o OPTIONAL { ?s <q> ?r VALUES ?x { 1 } } }`:        "VALUES inside OPTIONAL is not supported",
		`SELECT (COUNT(DISTINCT *) AS ?n) WHERE { ?s ?p ?o }`:                       "COUNT(DISTINCT *) is not supported",
		`SELECT (SUM(*) AS ?n) WHERE { ?s ?p ?o }`:                                  "only COUNT accepts *",
		`SELECT * WHERE { ?s ?p ?o } GROUP BY ?s`:                                   "SELECT * cannot be combined with GROUP BY",
		`SELECT ?p WHERE { ?s ?p ?o } GROUP BY ?s`:                                  "variable ?p must appear in GROUP BY or inside an aggregate",
		`SELECT ?s (COUNT(*) AS ?n) WHERE { ?s ?p ?o }`:                             "variable ?s must appear in GROUP BY or inside an aggregate",
		`SELECT (COUNT(*) AS ?s) WHERE { ?s ?p ?o }`:                                "AS ?s would rebind a WHERE-clause variable",
		`SELECT * WHERE { ?s <p> ?o . BIND(?o AS ?o) }`:                             "BIND target ?o is already bound in the group",
		`SELECT * WHERE { ?s ?p ?o } VALUES ?x { <a> }`:                             "VALUES must appear inside the WHERE clause",
		`SELECT * WHERE { ?s ?p ?o } ORDER BY ?s GROUP BY ?s`:                       "GROUP BY must appear before ORDER BY",
		`ASK { ?s ?p ?o } GROUP BY ?s`:                                              "GROUP BY is only valid in a SELECT query",
		`SELECT * WHERE { ?s <p> ?o . VALUES ?x { ?y } }`:                           "variables cannot appear in VALUES data",
		`SELECT * WHERE { VALUES (?x ?y) { (<a>) } ?x <p> ?y }`:                     "VALUES row has 1 terms, want 2",
	}
	for text, wantMsg := range cases {
		_, err := ParseQuery(text)
		if err == nil {
			t.Errorf("accepted %q", text)
			continue
		}
		if !strings.Contains(err.Error(), wantMsg) {
			t.Errorf("%q:\n  got  %v\n  want substring %q", text, err, wantMsg)
		}
	}
}

// Parse errors carry the 1-based line and column of the offending token.
func TestParseErrorPositions(t *testing.T) {
	_, err := ParseQuery("SELECT ?x WHERE {\n  ?x <p> ?y .\n  MINUS { ?x <q> ?z }\n}")
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T, want *ParseError", err)
	}
	if pe.Line != 3 || pe.Col != 3 || pe.Token != "MINUS" {
		t.Fatalf("position = line %d col %d token %q", pe.Line, pe.Col, pe.Token)
	}
	if !strings.Contains(pe.Error(), "line 3:3") {
		t.Fatalf("rendered error lacks position: %v", pe)
	}

	_, err = ParseQuery("SELECT ?x WHERE { ?x <p> ")
	if !errors.As(err, &pe) || pe.Token != "" {
		t.Fatalf("EOF error = %v", err)
	}
	if !strings.Contains(pe.Error(), "end of query") {
		t.Fatalf("EOF rendering: %v", pe)
	}
}

// ------------------------------------------------- SPARQL 1.1 expansion

func TestParseOptional(t *testing.T) {
	q := mustParse(t, `SELECT ?x ?n WHERE {
  ?x a <Person> .
  OPTIONAL { ?x <name> ?n . FILTER(?n != "x") }
  OPTIONAL { ?x <age> ?a }
}`)
	g := q.Groups[0]
	if len(g.Patterns) != 1 || len(g.Optionals) != 2 {
		t.Fatalf("group = %+v", g)
	}
	if len(g.Optionals[0].Patterns) != 1 || len(g.Optionals[0].Filters) != 1 {
		t.Fatalf("optional 0 = %+v", g.Optionals[0])
	}
	if g.Optionals[1].Patterns[0] != [3]string{"?x", "<age>", "?a"} {
		t.Fatalf("optional 1 = %+v", g.Optionals[1])
	}
}

func TestParseOptionalInUnionBranch(t *testing.T) {
	q := mustParse(t, `SELECT * WHERE {
  { ?x <p> ?y OPTIONAL { ?y <q> ?z } }
  UNION { ?x <r> ?y }
}`)
	if len(q.Groups) != 2 || len(q.Groups[0].Optionals) != 1 {
		t.Fatalf("groups = %+v", q.Groups)
	}
}

func TestParseBind(t *testing.T) {
	q := mustParse(t, `SELECT ?x ?y WHERE { ?x <p> ?o . BIND(?o AS ?y) . BIND(42 AS ?mean) }`)
	g := q.Groups[0]
	if len(g.Binds) != 2 || g.Binds[0].Var != "y" || g.Binds[1].Var != "mean" {
		t.Fatalf("binds = %+v", g.Binds)
	}
	if g.Binds[0].Expr.String() != "?o" {
		t.Fatalf("bind expr = %s", g.Binds[0].Expr)
	}
	// A BIND-only group is a valid unit-solution group.
	q = mustParse(t, `SELECT ?y WHERE { BIND(1 AS ?y) }`)
	if len(q.Groups[0].Binds) != 1 || len(q.Groups[0].Patterns) != 0 {
		t.Fatalf("bind-only group = %+v", q.Groups[0])
	}
}

func TestParseValuesForms(t *testing.T) {
	q := mustParse(t, `PREFIX ex: <http://e/>
SELECT * WHERE { ?x <p> ?y . VALUES ?x { ex:a <b> "lit" 42 } }`)
	v := q.Groups[0].Values[0]
	if len(v.Vars) != 1 || v.Vars[0] != "x" || len(v.Rows) != 4 {
		t.Fatalf("values = %+v", v)
	}
	want := []string{"<http://e/a>", "<b>", `"lit"`, `"42"`}
	for i, w := range want {
		if v.Rows[i][0] != w {
			t.Errorf("row %d = %q, want %q", i, v.Rows[i][0], w)
		}
	}

	q = mustParse(t, `SELECT * WHERE { ?x <p> ?y VALUES (?x ?y) { (<a> <b>) (UNDEF <c>) } }`)
	v = q.Groups[0].Values[0]
	if len(v.Vars) != 2 || len(v.Rows) != 2 {
		t.Fatalf("values = %+v", v)
	}
	if v.Rows[1][0] != "" || v.Rows[1][1] != "<c>" {
		t.Fatalf("UNDEF row = %+v", v.Rows[1])
	}

	// VALUES-only group: the data block is the whole pattern.
	q = mustParse(t, `SELECT ?x WHERE { VALUES ?x { <a> <b> } }`)
	if len(q.Groups[0].Values) != 1 || len(q.Groups[0].Patterns) != 0 {
		t.Fatalf("values-only group = %+v", q.Groups[0])
	}
}

func TestParsePredicateObjectLists(t *testing.T) {
	q := mustParse(t, `PREFIX ex: <http://e/>
SELECT * WHERE { ex:s ex:p ex:a , ex:b ; ex:q ex:c ; a ex:T . ?x ex:r ?y }`)
	want := [][3]string{
		{"<http://e/s>", "<http://e/p>", "<http://e/a>"},
		{"<http://e/s>", "<http://e/p>", "<http://e/b>"},
		{"<http://e/s>", "<http://e/q>", "<http://e/c>"},
		{"<http://e/s>", "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>", "<http://e/T>"},
		{"?x", "<http://e/r>", "?y"},
	}
	if !reflect.DeepEqual(q.Groups[0].Patterns, want) {
		t.Fatalf("patterns = %v", q.Groups[0].Patterns)
	}
	// Trailing ';' before '.' or '}' is legal, as in SPARQL.
	q = mustParse(t, `SELECT * WHERE { <s> <p> <a> ; . <s2> <q> <b> ; }`)
	if len(q.Groups[0].Patterns) != 2 {
		t.Fatalf("trailing-semicolon patterns = %v", q.Groups[0].Patterns)
	}
}

func TestParseAggregates(t *testing.T) {
	q := mustParse(t, `SELECT ?d (COUNT(*) AS ?n) (SUM(?a) AS ?sum) (COUNT(DISTINCT ?x) AS ?dx)
WHERE { ?x <in> ?d ; <age> ?a } GROUP BY ?d`)
	if !reflect.DeepEqual(q.Vars, []string{"d", "n", "sum", "dx"}) {
		t.Fatalf("vars = %v", q.Vars)
	}
	if !reflect.DeepEqual(q.GroupBy, []string{"d"}) {
		t.Fatalf("group by = %v", q.GroupBy)
	}
	if !q.HasAggregates() {
		t.Fatal("HasAggregates = false")
	}
	items := q.Items
	if items[0].Agg != nil || items[1].Agg == nil || items[2].Agg == nil || items[3].Agg == nil {
		t.Fatalf("items = %+v", items)
	}
	if !items[1].Agg.Star || items[1].Agg.Func != AggCount {
		t.Fatalf("COUNT(*) = %+v", items[1].Agg)
	}
	if items[2].Agg.Func != AggSum || items[2].Agg.Var != "a" {
		t.Fatalf("SUM = %+v", items[2].Agg)
	}
	if !items[3].Agg.Distinct || items[3].Agg.Var != "x" {
		t.Fatalf("COUNT DISTINCT = %+v", items[3].Agg)
	}
	// Aggregates without GROUP BY: one implicit group.
	q = mustParse(t, `SELECT (MIN(?a) AS ?lo) (MAX(?a) AS ?hi) WHERE { ?x <age> ?a }`)
	if len(q.GroupBy) != 0 || !q.HasAggregates() {
		t.Fatalf("implicit group query = %+v", q)
	}
}

func TestParseNumberTerm(t *testing.T) {
	for _, tok := range []string{"42", "3.5", "-7", "1e3", "2.5E-2"} {
		q := mustParse(t, `SELECT ?x WHERE { ?x <age> `+tok+` }`)
		if got := q.Groups[0].Patterns[0][2]; got != `"`+tok+`"` {
			t.Errorf("bare number %s = %q", tok, got)
		}
	}
	// Predicate position stays an error.
	if _, err := ParseQuery(`SELECT ?x WHERE { ?x 42 ?o }`); err == nil ||
		!strings.Contains(err.Error(), "cannot parse term") {
		t.Fatalf("numeric predicate: %v", err)
	}
	// Only the documented numeric shapes: everything ParseFloat would
	// additionally swallow must stay a deterministic parse error, not a
	// silently-unmatchable literal.
	for _, tok := range []string{"NaN", "Inf", "Infinity", "0x1p2", "1_000", "e3", "-", "1e", "1e+", "1e999"} {
		if _, err := ParseQuery(`SELECT ?x WHERE { ?x <age> ` + tok + ` }`); err == nil {
			t.Errorf("accepted non-numeric bare term %q", tok)
		}
	}
	// Same strictness for FILTER constants.
	if _, err := ParseQuery(`SELECT ?x WHERE { ?x <age> ?a . FILTER(?a = NaN) }`); err == nil ||
		!strings.Contains(err.Error(), "cannot parse FILTER operand") {
		t.Fatalf("NaN FILTER constant: %v", err)
	}
}

// BIND may not target a variable the group binds anywhere — patterns,
// OPTIONAL blocks, or VALUES — else the query would silently join
// instead of erroring like the pattern-variable case does.
func TestParseBindValuesCollisionRejected(t *testing.T) {
	_, err := ParseQuery(`SELECT * WHERE { ?s <p> ?o . VALUES ?x { <a> } BIND(<b> AS ?x) }`)
	if err == nil || !strings.Contains(err.Error(), "BIND target ?x is already bound in the group") {
		t.Fatalf("err = %v", err)
	}
}

func TestAggStateSemantics(t *testing.T) {
	obs := func(a *Aggregate, terms ...string) (string, bool) {
		st := NewAggState(a)
		for _, term := range terms {
			st.Observe(term, term != "")
		}
		return st.Result()
	}
	intLit := func(n string) string { return `"` + n + `"^^<http://www.w3.org/2001/XMLSchema#integer>` }

	if got, ok := obs(&Aggregate{Func: AggCount, Star: true}, "", "", ""); !ok || got != intLit("3") {
		t.Errorf("COUNT(*) = %q %t", got, ok)
	}
	if got, ok := obs(&Aggregate{Func: AggCount, Var: "v"}, `"a"`, "", `"a"`); !ok || got != intLit("2") {
		t.Errorf("COUNT(?v) skips unbound: %q %t", got, ok)
	}
	if got, ok := obs(&Aggregate{Func: AggCount, Var: "v", Distinct: true}, `"a"`, `"b"`, `"a"`); !ok || got != intLit("2") {
		t.Errorf("COUNT(DISTINCT ?v) = %q %t", got, ok)
	}
	if got, ok := obs(&Aggregate{Func: AggSum, Var: "v"}, `"2"`, `"40"^^<http://www.w3.org/2001/XMLSchema#int>`); !ok || got != intLit("42") {
		t.Errorf("SUM = %q %t", got, ok)
	}
	if _, ok := obs(&Aggregate{Func: AggSum, Var: "v"}, `"2"`, `"x"`); ok {
		t.Error("SUM over a non-numeric value must be unbound")
	}
	if got, ok := obs(&Aggregate{Func: AggSum, Var: "v"}); !ok || got != intLit("0") {
		t.Errorf("SUM over nothing = %q %t, want 0", got, ok)
	}
	if got, ok := obs(&Aggregate{Func: AggAvg, Var: "v"}, `"2"`, `"3"`); !ok || got != `"2.5"^^<http://www.w3.org/2001/XMLSchema#double>` {
		t.Errorf("AVG = %q %t", got, ok)
	}
	if got, ok := obs(&Aggregate{Func: AggMin, Var: "v"}, `"10"`, `"2"`); !ok || got != `"2"` {
		t.Errorf("MIN numeric = %q %t", got, ok)
	}
	if got, ok := obs(&Aggregate{Func: AggMax, Var: "v"}, `"10"`, `"2"`); !ok || got != `"10"` {
		t.Errorf("MAX numeric = %q %t", got, ok)
	}
	if _, ok := obs(&Aggregate{Func: AggMin, Var: "v"}); ok {
		t.Error("MIN over nothing must be unbound")
	}
}

func TestEvalTerm(t *testing.T) {
	b := bindingOf(map[string]string{
		"iri": "<http://e/a>",
		"n":   `"41"^^<http://www.w3.org/2001/XMLSchema#int>`,
	})
	bindOf := func(text string) Expr {
		t.Helper()
		q, err := ParseQuery(`SELECT * WHERE { ?s ?p ?o . BIND(` + text + ` AS ?out) }`)
		if err != nil {
			t.Fatalf("BIND(%s): %v", text, err)
		}
		return q.Groups[0].Binds[0].Expr
	}
	cases := []struct {
		expr string
		want string
	}{
		{`?iri`, "<http://e/a>"},
		{`?n`, `"41"^^<http://www.w3.org/2001/XMLSchema#int>`},
		{`42`, `"42"^^<http://www.w3.org/2001/XMLSchema#integer>`},
		{`"hello"`, `"hello"`},
		{`?n > 40`, `"true"^^<http://www.w3.org/2001/XMLSchema#boolean>`},
		{`bound(?missing)`, `"false"^^<http://www.w3.org/2001/XMLSchema#boolean>`},
	}
	for _, c := range cases {
		got, ok := EvalTerm(bindOf(c.expr), b)
		if !ok || got != c.want {
			t.Errorf("EvalTerm(%s) = %q %t, want %q", c.expr, got, ok, c.want)
		}
	}
	if _, ok := EvalTerm(bindOf(`?missing`), b); ok {
		t.Error("EvalTerm of an unbound variable must report !ok")
	}
}

func TestTokenizerLiteralEdgeCases(t *testing.T) {
	toks := tokenize(`"a \" quote" "x"@en "5"^^<http://t> .`)
	want := []string{`"a \" quote"`, `"x"@en`, `"5"^^<http://t>`, "."}
	got := make([]string, len(toks))
	for i, tk := range toks {
		got[i] = tk.text
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("toks = %q", got)
	}
}

func TestTokenizerOperators(t *testing.T) {
	toks := tokenize(`FILTER(?x<=3 && ?y != "a||b" || !bound(?z))`)
	want := []string{"FILTER", "(", "?x", "<=", "3", "&&", "?y", "!=", `"a||b"`, "||", "!", "bound", "(", "?z", ")", ")"}
	got := make([]string, len(toks))
	for i, tk := range toks {
		got[i] = tk.text
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("toks = %q", got)
	}
}

// '<' opens an IRI only when '>' closes it before whitespace; otherwise
// it is the comparison operator.
func TestTokenizerIRIVersusLessThan(t *testing.T) {
	toks := tokenize(`?x < 3 . ?y <http://e/a> ?z`)
	want := []string{"?x", "<", "3", ".", "?y", "<http://e/a>", "?z"}
	got := make([]string, len(toks))
	for i, tk := range toks {
		got[i] = tk.text
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("toks = %q", got)
	}
}

func TestDotVersusDecimalInLocalNames(t *testing.T) {
	q := mustParse(t, `PREFIX ex: <http://e/>
SELECT * WHERE { ex:a.b ex:p ?o }`)
	if q.Groups[0].Patterns[0][0] != "<http://e/a.b>" {
		t.Fatalf("dotted local name: %q", q.Groups[0].Patterns[0][0])
	}
}

func TestKeywordAOnlyInPredicatePosition(t *testing.T) {
	_, err := ParseQuery(`SELECT * WHERE { a ?p ?o }`)
	if err == nil || !strings.Contains(err.Error(), "cannot parse term") {
		t.Fatalf("'a' in subject position must fail, got %v", err)
	}
}

// ------------------------------------------------------ filter evaluation

// bindingOf builds a lookup over a literal map.
func bindingOf(m map[string]string) func(string) (string, bool) {
	return func(name string) (string, bool) {
		v, ok := m[name]
		return v, ok
	}
}

func filterOf(t *testing.T, text string) Expr {
	t.Helper()
	q, err := ParseQuery("SELECT * WHERE { ?s ?p ?o . FILTER" + text + " }")
	if err != nil {
		t.Fatalf("FILTER%s: %v", text, err)
	}
	return q.Groups[0].Filters[0]
}

func TestFilterEval(t *testing.T) {
	b := bindingOf(map[string]string{
		"n":    `"42"^^<http://www.w3.org/2001/XMLSchema#int>`,
		"m":    `"7"`,
		"name": `"Alice"`,
		"iri":  `<http://e/alice>`,
		"lang": `"chat"@fr`,
	})
	cases := []struct {
		filter string
		want   bool
	}{
		{`(?n > 10)`, true},
		{`(?n < 10)`, false},
		{`(?n >= 42)`, true},
		{`(?n = 42)`, true},
		{`(?n != 42)`, false},
		{`(?m < ?n)`, true}, // 7 < 42 numerically, not lexically
		{`(?name = "Alice")`, true},
		{`(?name != "Bob")`, true},
		{`(?name < "Bob")`, true},
		{`(?iri = <http://e/alice>)`, true},
		{`(?iri != <http://e/bob>)`, true},
		{`(?n > 10 && ?name = "Alice")`, true},
		{`(?n < 10 || ?name = "Alice")`, true},
		{`(!(?n < 10))`, true},
		{`(bound(?name))`, true},
		{`(bound(?missing))`, false},
		{`(!bound(?missing))`, true},
		{` regex(?name, "^Ali")`, true},
		{` regex(?name, "^ali")`, false},
		{` regex(?name, "^ali", "i")`, true},
		{` regex(?iri, "alice$")`, true},
		{` regex(?lang, "^ch")`, true},
		// Unbound variables outside bound() fail the constraint.
		{`(?missing > 3)`, false},
		// true || error is true; error && anything is false at the top.
		{`(?name = "Alice" || ?missing > 3)`, true},
		{`(?missing > 3 && ?name = "Alice")`, false},
		// Cross-kind ordering is an evaluation error, not a panic.
		{`(?iri < ?n)`, false},
		// IRI vs literal equality: distinct terms.
		{`(?iri = "Alice")`, false},
		{`(?iri != "Alice")`, true},
	}
	for _, c := range cases {
		e := filterOf(t, c.filter)
		if got := Eval(e, b); got != c.want {
			t.Errorf("FILTER%s = %t, want %t", c.filter, got, c.want)
		}
	}
}

func TestFilterLangAndTypedLiteralEquality(t *testing.T) {
	b := bindingOf(map[string]string{
		"lang":  `"chat"@fr`,
		"plain": `"chat"`,
	})
	// A language-tagged literal is a different term from the plain one.
	if Eval(filterOf(t, `(?lang = "chat")`), b) {
		t.Error(`"chat"@fr = "chat" must be false`)
	}
	if !Eval(filterOf(t, `(?plain = "chat")`), b) {
		t.Error(`"chat" = "chat" must be true`)
	}
}

func TestCompareTerms(t *testing.T) {
	ordered := []string{
		"",                             // unbound first
		"_:b0",                         // blanks
		"<http://e/a>", "<http://e/b>", // IRIs
		`"2"`, `"10"`, // numeric literals by value
		`"alpha"`, `"beta"`, // strings lexically
	}
	for i := range ordered {
		for j := range ordered {
			got := CompareTerms(ordered[i], ordered[j])
			want := cmpInt(i, j)
			if (got < 0) != (want < 0) || (got > 0) != (want > 0) {
				t.Errorf("CompareTerms(%q, %q) = %d, want sign of %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestNumericTerm(t *testing.T) {
	if v, ok := NumericTerm(`"3.5"`); !ok || v != 3.5 {
		t.Fatalf("plain numeric literal: %v %t", v, ok)
	}
	if v, ok := NumericTerm(`"41"^^<http://www.w3.org/2001/XMLSchema#integer>`); !ok || v != 41 {
		t.Fatalf("typed numeric literal: %v %t", v, ok)
	}
	if _, ok := NumericTerm(`"abc"`); ok {
		t.Fatal("non-numeric literal classified numeric")
	}
	if _, ok := NumericTerm(`<http://e/1>`); ok {
		t.Fatal("IRI classified numeric")
	}
}
