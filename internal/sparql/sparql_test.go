package sparql

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseBasicSelect(t *testing.T) {
	q, err := ParseSelect(`
PREFIX ex: <http://e/>
SELECT ?who ?org WHERE {
  ?who ex:memberOf ?org .
  ?org a ex:Department .
}
LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q.Vars, []string{"who", "org"}) {
		t.Fatalf("vars = %v", q.Vars)
	}
	want := [][3]string{
		{"?who", "<http://e/memberOf>", "?org"},
		{"?org", "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>", "<http://e/Department>"},
	}
	if !reflect.DeepEqual(q.Patterns, want) {
		t.Fatalf("patterns = %v", q.Patterns)
	}
	if q.Limit != 10 {
		t.Fatalf("limit = %d", q.Limit)
	}
}

func TestParseSelectStar(t *testing.T) {
	q, err := ParseSelect(`SELECT * WHERE { ?s ?p ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Vars) != 0 {
		t.Fatal("SELECT * must leave Vars empty")
	}
	if len(q.Patterns) != 1 || q.Patterns[0] != [3]string{"?s", "?p", "?o"} {
		t.Fatalf("patterns = %v", q.Patterns)
	}
}

func TestParseLiterals(t *testing.T) {
	q, err := ParseSelect(`
PREFIX ex: <http://e/>
SELECT ?x WHERE {
  ?x ex:name "Alice" .
  ?x ex:motto "vive la vie"@fr .
  ?x ex:age "42"^^<http://www.w3.org/2001/XMLSchema#int>
}`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Patterns[0][2] != `"Alice"` {
		t.Errorf("plain literal: %q", q.Patterns[0][2])
	}
	if q.Patterns[1][2] != `"vive la vie"@fr` {
		t.Errorf("lang literal: %q", q.Patterns[1][2])
	}
	if q.Patterns[2][2] != `"42"^^<http://www.w3.org/2001/XMLSchema#int>` {
		t.Errorf("typed literal: %q", q.Patterns[2][2])
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	q, err := ParseSelect(`prefix ex: <http://e/>
select ?x where { ?x a ex:T } limit 3`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Limit != 3 || len(q.Patterns) != 1 {
		t.Fatalf("q = %+v", q)
	}
}

func TestParseComments(t *testing.T) {
	q, err := ParseSelect(`
# find everything
SELECT * WHERE {
  ?s ?p ?o . # any triple
}`)
	if err != nil || len(q.Patterns) != 1 {
		t.Fatalf("q=%+v err=%v", q, err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"no-select":        `WHERE { ?s ?p ?o }`,
		"no-where":         `SELECT ?s { ?s ?p ?o }`,
		"empty-bgp":        `SELECT * WHERE { }`,
		"undefined-prefix": `SELECT * WHERE { ex:a ?p ?o }`,
		"filter":           `SELECT * WHERE { ?s ?p ?o } FILTER(?s > 3)`,
		"optional":         `SELECT * WHERE { ?s ?p ?o } OPTIONAL { ?s ?q ?r }`,
		"bad-limit":        `SELECT * WHERE { ?s ?p ?o } LIMIT many`,
		"no-projection":    `SELECT WHERE { ?s ?p ?o }`,
		"dangling-pattern": `SELECT * WHERE { ?s ?p }`,
	}
	for name, text := range bad {
		if _, err := ParseSelect(text); err == nil {
			t.Errorf("%s: accepted %q", name, text)
		}
	}
}

func TestTokenizerLiteralEdgeCases(t *testing.T) {
	toks := tokenize(`"a \" quote" "x"@en "5"^^<http://t> .`)
	want := []string{`"a \" quote"`, `"x"@en`, `"5"^^<http://t>`, "."}
	if !reflect.DeepEqual(toks, want) {
		t.Fatalf("toks = %q", toks)
	}
}

func TestDotVersusDecimalInLocalNames(t *testing.T) {
	q, err := ParseSelect(`PREFIX ex: <http://e/>
SELECT * WHERE { ex:a.b ex:p ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Patterns[0][0] != "<http://e/a.b>" {
		t.Fatalf("dotted local name: %q", q.Patterns[0][0])
	}
}

func TestKeywordAOnlyInPredicatePosition(t *testing.T) {
	_, err := ParseSelect(`SELECT * WHERE { a ?p ?o }`)
	if err == nil || !strings.Contains(err.Error(), "cannot parse term") {
		t.Fatalf("'a' in subject position must fail, got %v", err)
	}
}
