package sparql

// GROUP BY aggregation: the aggregate AST the projection parser emits
// and the accumulator the query pipeline drives. The semantics of each
// function over a group's solutions (docs/SPARQL.md §Aggregates):
//
//   - COUNT(*) counts solutions; COUNT(?v) counts solutions where ?v
//     is bound; DISTINCT deduplicates the counted values.
//   - SUM and AVG fold the numeric interpretations of the bound
//     values; a bound non-numeric value makes the whole aggregate an
//     error, so its output cell is unbound. Over zero values both are
//     0, per the SPARQL 1.1 definitions.
//   - MIN and MAX pick extremes under the CompareTerms total order;
//     over zero values they are unbound.

import (
	"math"
	"strconv"
)

// AggFunc identifies an aggregate function.
type AggFunc int

// The aggregate functions the projection accepts.
const (
	AggCount AggFunc = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

// String names the aggregate the way the grammar spells it.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggAvg:
		return "AVG"
	}
	return "AGG?"
}

// Aggregate is one aggregate call in the projection.
type Aggregate struct {
	// Func is the aggregate function.
	Func AggFunc
	// Var is the argument variable name without '?' ("" when Star).
	Var string
	// Star marks COUNT(*).
	Star bool
	// Distinct deduplicates the aggregated values.
	Distinct bool
}

// AggState accumulates one aggregate over the solutions of one group.
type AggState struct {
	agg    *Aggregate
	count  int64
	sum    float64
	numErr bool
	has    bool // a value was observed (MIN/MAX defined)
	min    string
	max    string
	seen   map[string]bool // DISTINCT dedup
}

// NewAggState returns an empty accumulator for one aggregate call.
func NewAggState(a *Aggregate) *AggState {
	st := &AggState{agg: a}
	if a.Distinct {
		st.seen = map[string]bool{}
	}
	return st
}

// Observe feeds one solution's value of the aggregate argument; bound
// reports whether the argument variable was bound in that solution
// (ignored for COUNT(*), which counts every solution).
func (st *AggState) Observe(term string, bound bool) {
	if st.agg.Star {
		st.count++
		return
	}
	if !bound {
		return // unbound cells contribute nothing
	}
	if st.seen != nil {
		if st.seen[term] {
			return
		}
		st.seen[term] = true
	}
	st.count++
	switch st.agg.Func {
	case AggSum, AggAvg:
		if f, ok := NumericTerm(term); ok {
			st.sum += f
		} else {
			st.numErr = true
		}
	case AggMin, AggMax:
		if !st.has {
			st.min, st.max, st.has = term, term, true
			return
		}
		if CompareTerms(term, st.min) < 0 {
			st.min = term
		}
		if CompareTerms(term, st.max) > 0 {
			st.max = term
		}
	}
}

// Result renders the aggregate as a term surface form; ok is false
// when the cell is unbound (MIN/MAX over zero values, SUM/AVG over a
// non-numeric value).
func (st *AggState) Result() (term string, ok bool) {
	switch st.agg.Func {
	case AggCount:
		return NumericLiteral(float64(st.count)), true
	case AggSum:
		if st.numErr {
			return "", false
		}
		return NumericLiteral(st.sum), true
	case AggAvg:
		if st.numErr {
			return "", false
		}
		if st.count == 0 {
			return NumericLiteral(0), true
		}
		return NumericLiteral(st.sum / float64(st.count)), true
	case AggMin:
		return st.min, st.has
	case AggMax:
		return st.max, st.has
	}
	return "", false
}

// NumericLiteral renders a computed number as a typed literal surface
// form: integral values as xsd:integer, everything else as xsd:double.
func NumericLiteral(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return `"` + strconv.FormatInt(int64(f), 10) + `"^^<http://www.w3.org/2001/XMLSchema#integer>`
	}
	return `"` + strconv.FormatFloat(f, 'g', -1, 64) + `"^^<http://www.w3.org/2001/XMLSchema#double>`
}
