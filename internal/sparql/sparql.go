// Package sparql parses a practical subset of SPARQL into the form the
// query engine evaluates. The paper positions Inferray as the
// storage-and-inference layer *under* a SPARQL engine (§1: triple
// stores "support SPARQL, a mature, feature-rich query language");
// after materialization every SPARQL basic graph pattern is answerable
// by plain index scans, which this front-end exposes.
//
// Supported: PREFIX declarations, SELECT (with DISTINCT, a projection
// list or *) and ASK query forms, WHERE with a basic graph pattern or a
// UNION of braced groups, FILTER (comparisons, logical connectives,
// regex, bound), ORDER BY (ASC/DESC), LIMIT, and OFFSET. The exact
// grammar, the term syntax, and the error message for every rejected
// construct (OPTIONAL, property paths, subqueries, …) are documented in
// docs/SPARQL.md.
//
// Every parse failure is a *ParseError carrying the 1-based line and
// column of the offending token, so callers (the HTTP endpoint, the
// CLI) can point at the exact spot.
package sparql

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Form distinguishes the supported query forms.
type Form int

// The query forms ParseQuery accepts.
const (
	FormSelect Form = iota
	FormAsk
)

// Query is a parsed SELECT or ASK query.
type Query struct {
	// Form is the query form: FormSelect or FormAsk.
	Form Form
	// Distinct is set by SELECT DISTINCT (and REDUCED, which this
	// dialect treats as DISTINCT — the spec permits any amount of
	// duplicate elimination under REDUCED).
	Distinct bool
	// Vars is the projection in declaration order; empty means SELECT *
	// (project every variable in order of first appearance).
	Vars []string
	// Groups holds the UNION branches of the WHERE clause; a query
	// without UNION has exactly one group.
	Groups []Group
	// OrderBy lists the ORDER BY keys in priority order.
	OrderBy []OrderKey
	// Limit bounds the number of solutions when HasLimit is set.
	Limit    int
	HasLimit bool
	// Offset skips the first Offset solutions.
	Offset int
}

// Group is one UNION branch: a basic graph pattern plus the FILTER
// constraints written inside its braces.
type Group struct {
	// Patterns is the basic graph pattern; terms are N-Triples surface
	// forms, with variables as "?name".
	Patterns [][3]string
	// Filters are the group's FILTER constraints; a solution must pass
	// all of them.
	Filters []Expr
}

// OrderKey is one ORDER BY sort key.
type OrderKey struct {
	Var  string // variable name without '?'
	Desc bool   // DESC(...) inverts the order
}

// ParseError reports a parse failure with its position. Line and Col
// are 1-based; Token is the offending token's text, empty when the
// query ended too early.
type ParseError struct {
	Msg   string
	Line  int
	Col   int
	Token string
}

// Error formats the failure with its position, e.g.
// `sparql: OPTIONAL is not supported at line 3:5 (near "OPTIONAL")`.
func (e *ParseError) Error() string {
	if e.Token == "" {
		return fmt.Sprintf("sparql: %s at end of query", e.Msg)
	}
	return fmt.Sprintf("sparql: %s at line %d:%d (near %q)", e.Msg, e.Line, e.Col, e.Token)
}

// ParseQuery parses a SELECT or ASK query.
func ParseQuery(text string) (*Query, error) {
	p := &parser{src: text, toks: tokenize(text)}
	q := &Query{}
	prefixes := map[string]string{}

	for p.peekKeyword("PREFIX") {
		p.next()
		label, ok := p.nextPrefixLabel()
		if !ok {
			return nil, p.errHere("expected prefix label after PREFIX")
		}
		iri, ok := p.nextIRI()
		if !ok {
			return nil, p.errHere("expected IRI after prefix label")
		}
		prefixes[label] = iri
	}

	switch {
	case p.peekKeyword("SELECT"):
		q.Form = FormSelect
		p.next()
		if err := p.parseProjection(q); err != nil {
			return nil, err
		}
	case p.peekKeyword("ASK"):
		q.Form = FormAsk
		p.next()
	case p.peekKeyword("CONSTRUCT"), p.peekKeyword("DESCRIBE"),
		p.peekKeyword("INSERT"), p.peekKeyword("DELETE"):
		return nil, p.errHere("only SELECT and ASK query forms are supported")
	default:
		return nil, p.errHere("expected SELECT or ASK")
	}

	if p.peekKeyword("WHERE") {
		p.next()
	}
	groups, err := p.parseWhere(prefixes)
	if err != nil {
		return nil, err
	}
	q.Groups = groups

	if err := p.parseModifiers(q); err != nil {
		return nil, err
	}
	if tok := p.peek(); tok != "" {
		for _, kw := range []string{"GROUP", "HAVING", "OPTIONAL", "UNION", "MINUS", "VALUES", "BIND"} {
			if strings.EqualFold(tok, kw) {
				if kw == "GROUP" {
					return nil, p.errHere("GROUP BY is not supported")
				}
				return nil, p.errHere("%s is not supported", kw)
			}
		}
		return nil, p.errHere("unsupported or trailing syntax")
	}
	for _, g := range q.Groups {
		if len(g.Patterns) == 0 {
			return nil, p.errHere("empty basic graph pattern")
		}
	}
	return q, nil
}

// ParseSelect parses a SELECT query; an ASK query is an error (use
// ParseQuery when both forms are acceptable).
func ParseSelect(text string) (*Query, error) {
	q, err := ParseQuery(text)
	if err != nil {
		return nil, err
	}
	if q.Form != FormSelect {
		return nil, &ParseError{Msg: "expected a SELECT query (got ASK)", Line: 1, Col: 1, Token: "ASK"}
	}
	return q, nil
}

// parseProjection reads DISTINCT/REDUCED and the projection list or *.
func (p *parser) parseProjection(q *Query) error {
	if p.peekKeyword("DISTINCT") || p.peekKeyword("REDUCED") {
		q.Distinct = true
		p.next()
	}
	if p.peekTok("*") {
		p.next()
		return nil
	}
	for strings.HasPrefix(p.peek(), "?") {
		tok := p.next()
		if len(tok) == 1 {
			return p.errPrev("bare '?' is not a variable")
		}
		q.Vars = append(q.Vars, tok[1:])
	}
	if len(q.Vars) == 0 {
		return p.errHere("SELECT needs a projection list or *")
	}
	return nil
}

// parseWhere reads the braced WHERE clause: either one basic graph
// pattern or a chain of braced groups joined by UNION.
func (p *parser) parseWhere(prefixes map[string]string) ([]Group, error) {
	if !p.peekTok("{") {
		return nil, p.errHere("expected '{' to open the WHERE clause")
	}
	p.next()

	if p.peekTok("{") {
		// UNION form: every branch is a braced group, and the branches
		// are the entire clause.
		var groups []Group
		for {
			g, err := p.parseBracedGroup(prefixes)
			if err != nil {
				return nil, err
			}
			groups = append(groups, g)
			if p.peekKeyword("UNION") {
				p.next()
				if !p.peekTok("{") {
					return nil, p.errHere("expected '{' after UNION")
				}
				continue
			}
			break
		}
		if !p.peekTok("}") {
			return nil, p.errHere("UNION branches must make up the whole WHERE clause")
		}
		p.next()
		return groups, nil
	}

	g, err := p.parseGroupBody(prefixes)
	if err != nil {
		return nil, err
	}
	p.next() // consume '}'
	return []Group{g}, nil
}

// parseBracedGroup parses '{' body '}' (one UNION branch).
func (p *parser) parseBracedGroup(prefixes map[string]string) (Group, error) {
	p.next() // consume '{'
	if p.peekKeyword("SELECT") {
		return Group{}, p.errHere("subqueries are not supported")
	}
	g, err := p.parseGroupBody(prefixes)
	if err != nil {
		return Group{}, err
	}
	p.next() // consume '}'
	return g, nil
}

// parseGroupBody parses triple patterns and FILTERs up to (not
// consuming) the closing '}'.
func (p *parser) parseGroupBody(prefixes map[string]string) (Group, error) {
	var g Group
	for !p.peekTok("}") {
		tok := p.peek()
		switch {
		case tok == "":
			return g, p.errHere("unexpected end of query inside group (missing '}')")
		case p.peekKeyword("FILTER"):
			p.next()
			e, err := p.parseConstraint(prefixes)
			if err != nil {
				return g, err
			}
			g.Filters = append(g.Filters, e)
			if p.peekTok(".") {
				p.next()
			}
			continue
		case p.peekKeyword("OPTIONAL"):
			return g, p.errHere("OPTIONAL is not supported")
		case p.peekKeyword("MINUS"):
			return g, p.errHere("MINUS is not supported")
		case p.peekKeyword("GRAPH"):
			return g, p.errHere("GRAPH is not supported")
		case p.peekKeyword("SERVICE"):
			return g, p.errHere("SERVICE is not supported")
		case p.peekKeyword("BIND"):
			return g, p.errHere("BIND is not supported")
		case p.peekKeyword("VALUES"):
			return g, p.errHere("VALUES is not supported")
		case p.peekKeyword("UNION"):
			return g, p.errHere("UNION must combine braced groups ({ … } UNION { … })")
		case tok == "{":
			if p.peekAheadKeyword(1, "SELECT") {
				p.next()
				return g, p.errHere("subqueries are not supported")
			}
			return g, p.errHere("nested group patterns are not supported (UNION branches must be the entire WHERE clause)")
		}

		var pat [3]string
		for i := 0; i < 3; i++ {
			tok := p.peek()
			if tok == "" {
				return g, p.errHere("unexpected end of query in triple pattern")
			}
			if isPathToken(tok) {
				return g, p.errHere("property paths are not supported")
			}
			if tok == ";" {
				return g, p.errHere("predicate-object lists (';') are not supported")
			}
			if tok == "," {
				return g, p.errHere("object lists (',') are not supported")
			}
			p.next()
			term, err := resolveTerm(tok, i == 1, prefixes)
			if err != nil {
				return g, p.errPrev("%s", err)
			}
			pat[i] = term
			if i == 1 && isPathToken(p.peek()) {
				return g, p.errHere("property paths are not supported")
			}
		}
		g.Patterns = append(g.Patterns, pat)
		switch {
		case p.peekTok("."):
			p.next()
		case p.peekTok(";"):
			return g, p.errHere("predicate-object lists (';') are not supported")
		case p.peekTok(","):
			return g, p.errHere("object lists (',') are not supported")
		}
	}
	return g, nil
}

// expandLiteralDatatype rewrites a prefixed datatype ("5"^^xsd:int)
// into the full-IRI surface form the store uses ("5"^^<...#int>); a
// literal with a full-IRI datatype, a language tag, or no suffix passes
// through unchanged. Without the expansion the prefixed form would
// silently match nothing (the dictionary only knows full IRIs).
func expandLiteralDatatype(tok string, prefixes map[string]string) (string, error) {
	end := literalLexEnd(tok)
	suffix := tok[end:]
	if !strings.HasPrefix(suffix, "^^") || strings.HasPrefix(suffix, "^^<") {
		return tok, nil
	}
	dt := suffix[2:]
	colon := strings.IndexByte(dt, ':')
	if colon < 0 {
		return "", fmt.Errorf("cannot parse literal datatype %q", dt)
	}
	ns, ok := prefixes[dt[:colon]]
	if !ok {
		return "", fmt.Errorf("undefined prefix %q in literal datatype", dt[:colon])
	}
	return tok[:end] + "^^<" + ns + dt[colon+1:] + ">", nil
}

// isPathToken reports whether tok is a SPARQL property-path operator.
func isPathToken(tok string) bool {
	switch tok {
	case "/", "|", "^", "*", "+":
		return true
	}
	return false
}

// parseModifiers reads ORDER BY, LIMIT, and OFFSET (LIMIT and OFFSET in
// either order, each at most once).
func (p *parser) parseModifiers(q *Query) error {
	if p.peekKeyword("ORDER") {
		p.next()
		if !p.peekKeyword("BY") {
			return p.errHere("expected BY after ORDER")
		}
		p.next()
	orderKeys:
		for {
			switch {
			case p.peekKeyword("ASC"), p.peekKeyword("DESC"):
				desc := p.peekKeyword("DESC")
				p.next()
				if !p.peekTok("(") {
					return p.errHere("expected '(' after ASC/DESC")
				}
				p.next()
				v, err := p.nextVar()
				if err != nil {
					return err
				}
				if !p.peekTok(")") {
					return p.errHere("expected ')' to close ASC/DESC")
				}
				p.next()
				q.OrderBy = append(q.OrderBy, OrderKey{Var: v, Desc: desc})
			case strings.HasPrefix(p.peek(), "?"):
				v, err := p.nextVar()
				if err != nil {
					return err
				}
				q.OrderBy = append(q.OrderBy, OrderKey{Var: v})
			default:
				if len(q.OrderBy) == 0 {
					return p.errHere("ORDER BY needs at least one ?var, ASC(?var), or DESC(?var) key")
				}
				break orderKeys
			}
		}
	}
	seenOffset := false
	for p.peekKeyword("LIMIT") || p.peekKeyword("OFFSET") {
		isLimit := p.peekKeyword("LIMIT")
		p.next()
		n, err := p.nextNonNegativeInt()
		if err != nil {
			if isLimit {
				return p.errHere("LIMIT needs a non-negative integer")
			}
			return p.errHere("OFFSET needs a non-negative integer")
		}
		if isLimit {
			if q.HasLimit {
				return p.errPrev("duplicate LIMIT")
			}
			q.Limit, q.HasLimit = n, true
		} else {
			if seenOffset {
				return p.errPrev("duplicate OFFSET")
			}
			q.Offset, seenOffset = n, true
		}
	}
	return nil
}

// resolveTerm converts one token into an N-Triples surface form.
func resolveTerm(tok string, predicatePos bool, prefixes map[string]string) (string, error) {
	switch {
	case tok == "a" && predicatePos:
		return "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>", nil
	case strings.HasPrefix(tok, "?"):
		if len(tok) == 1 {
			return "", fmt.Errorf("bare '?' is not a variable")
		}
		return tok, nil
	case strings.HasPrefix(tok, "<"):
		if !strings.HasSuffix(tok, ">") {
			return "", fmt.Errorf("unterminated IRI %q", tok)
		}
		return tok, nil
	case strings.HasPrefix(tok, `"`):
		return expandLiteralDatatype(tok, prefixes)
	case strings.HasPrefix(tok, "_:"):
		return tok, nil
	default:
		colon := strings.IndexByte(tok, ':')
		if colon < 0 {
			return "", fmt.Errorf("cannot parse term %q", tok)
		}
		ns, ok := prefixes[tok[:colon]]
		if !ok {
			return "", fmt.Errorf("undefined prefix %q", tok[:colon])
		}
		return "<" + ns + tok[colon+1:] + ">", nil
	}
}

// ---------------------------------------------------------------- parser

// token is one lexed token with its byte offset in the source.
type token struct {
	text string
	off  int
}

// parser is a token cursor over the positioned token stream.
type parser struct {
	src  string
	toks []token
	pos  int
}

func (p *parser) peek() string {
	if p.pos >= len(p.toks) {
		return ""
	}
	return p.toks[p.pos].text
}

func (p *parser) next() string {
	t := p.peek()
	if t != "" {
		p.pos++
	}
	return t
}

func (p *parser) peekTok(s string) bool { return p.peek() == s }

func (p *parser) peekKeyword(kw string) bool {
	return strings.EqualFold(p.peek(), kw)
}

// peekAheadKeyword looks n tokens past the cursor.
func (p *parser) peekAheadKeyword(n int, kw string) bool {
	if p.pos+n >= len(p.toks) {
		return false
	}
	return strings.EqualFold(p.toks[p.pos+n].text, kw)
}

func (p *parser) nextPrefixLabel() (string, bool) {
	t := p.next()
	if !strings.HasSuffix(t, ":") {
		return "", false
	}
	return strings.TrimSuffix(t, ":"), true
}

func (p *parser) nextIRI() (string, bool) {
	t := p.next()
	if strings.HasPrefix(t, "<") && strings.HasSuffix(t, ">") {
		return strings.TrimPrefix(strings.TrimSuffix(t, ">"), "<"), true
	}
	return "", false
}

func (p *parser) nextVar() (string, error) {
	t := p.peek()
	if !strings.HasPrefix(t, "?") || len(t) == 1 {
		return "", p.errHere("expected a ?variable")
	}
	p.next()
	return t[1:], nil
}

func (p *parser) nextNonNegativeInt() (int, error) {
	n, err := strconv.Atoi(p.peek())
	if err != nil || n < 0 {
		return 0, fmt.Errorf("not a non-negative integer")
	}
	p.next()
	return n, nil
}

// errHere builds a ParseError at the current token (or end of input).
func (p *parser) errHere(format string, args ...interface{}) error {
	return p.errAtIndex(p.pos, format, args...)
}

// errPrev builds a ParseError at the token just consumed.
func (p *parser) errPrev(format string, args ...interface{}) error {
	i := p.pos - 1
	if i < 0 {
		i = 0
	}
	return p.errAtIndex(i, format, args...)
}

func (p *parser) errAtIndex(i int, format string, args ...interface{}) error {
	e := &ParseError{Msg: fmt.Sprintf(format, args...)}
	var off int
	if i < len(p.toks) {
		e.Token = p.toks[i].text
		off = p.toks[i].off
	} else {
		off = len(p.src)
	}
	e.Line, e.Col = lineCol(p.src, off)
	return e
}

// lineCol converts a byte offset into a 1-based line and column.
func lineCol(src string, off int) (line, col int) {
	if off > len(src) {
		off = len(src)
	}
	line = 1 + strings.Count(src[:off], "\n")
	if i := strings.LastIndexByte(src[:off], '\n'); i >= 0 {
		col = off - i
	} else {
		col = off + 1
	}
	return line, col
}

// -------------------------------------------------------------- tokenizer

// tokenize splits query text into positioned tokens: punctuation and
// operators ({ } ( ) , ; . = != < <= > >= && || ! / | ^ * +), IRIs,
// literals (kept intact with tags/datatypes), and words. Comments (#)
// run to end of line. A '<' opens an IRI only when a '>' closes it
// before any whitespace; otherwise it lexes as a comparison operator,
// which is what FILTER expressions need.
func tokenize(text string) []token {
	var toks []token
	emit := func(s string, off int) { toks = append(toks, token{text: s, off: off}) }
	i := 0
	n := len(text)
	for i < n {
		c := text[i]
		switch {
		case c == '#':
			for i < n && text[i] != '\n' {
				i++
			}
		case unicode.IsSpace(rune(c)):
			i++
		case c == '{' || c == '}' || c == '(' || c == ')' || c == ',' || c == ';' ||
			c == '/' || c == '*' || c == '+' || c == '^' || c == '=':
			emit(string(c), i)
			i++
		case c == '.':
			emit(".", i)
			i++
		case c == '!':
			if i+1 < n && text[i+1] == '=' {
				emit("!=", i)
				i += 2
			} else {
				emit("!", i)
				i++
			}
		case c == '&':
			if i+1 < n && text[i+1] == '&' {
				emit("&&", i)
				i += 2
			} else {
				emit("&", i)
				i++
			}
		case c == '|':
			if i+1 < n && text[i+1] == '|' {
				emit("||", i)
				i += 2
			} else {
				emit("|", i)
				i++
			}
		case c == '>':
			if i+1 < n && text[i+1] == '=' {
				emit(">=", i)
				i += 2
			} else {
				emit(">", i)
				i++
			}
		case c == '<':
			// IRI iff a '>' appears before any whitespace; else operator.
			if j := iriEnd(text, i); j > 0 {
				emit(text[i:j], i)
				i = j
			} else if i+1 < n && text[i+1] == '=' {
				emit("<=", i)
				i += 2
			} else {
				emit("<", i)
				i++
			}
		case c == '"':
			j := i + 1
			for j < n {
				if text[j] == '\\' {
					j += 2
					continue
				}
				if text[j] == '"' {
					break
				}
				j++
			}
			if j >= n {
				emit(text[i:], i)
				return toks
			}
			j++ // past closing quote
			// Attach language tag or datatype.
			if j < n && text[j] == '@' {
				for j < n && !unicode.IsSpace(rune(text[j])) &&
					text[j] != '.' && text[j] != '}' && text[j] != ')' && text[j] != ',' {
					j++
				}
			} else if j+1 < n && text[j] == '^' && text[j+1] == '^' {
				j += 2
				if j < n && text[j] == '<' {
					if k := strings.IndexByte(text[j:], '>'); k >= 0 {
						j += k + 1
					}
				} else {
					// prefixed datatype: runs to the next breaker
					for j < n && !unicode.IsSpace(rune(text[j])) && !isBreaker(text[j]) {
						j++
					}
				}
			}
			emit(text[i:j], i)
			i = j
		default:
			j := i
			for j < n && !unicode.IsSpace(rune(text[j])) && !isBreaker(text[j]) {
				// A '.' ends a token unless it is inside a prefixed
				// local name or decimal followed by more name characters.
				if text[j] == '.' {
					if j+1 >= n || unicode.IsSpace(rune(text[j+1])) ||
						text[j+1] == '}' || text[j+1] == ')' {
						break
					}
				}
				j++
			}
			if j == i { // defensive: always make progress
				emit(string(text[i]), i)
				i++
				continue
			}
			emit(text[i:j], i)
			i = j
		}
	}
	return toks
}

// isBreaker reports whether c always terminates a word token.
func isBreaker(c byte) bool {
	switch c {
	case '{', '}', '(', ')', ',', ';', '#', '=', '!', '<', '>', '&', '|', '^', '/', '*', '+', '"':
		return true
	}
	return false
}

// iriEnd returns the index just past the closing '>' of an IRI starting
// at text[i] == '<', or 0 when no '>' occurs before whitespace (then
// '<' is an operator).
func iriEnd(text string, i int) int {
	for j := i + 1; j < len(text); j++ {
		c := text[j]
		if c == '>' {
			return j + 1
		}
		if unicode.IsSpace(rune(c)) {
			return 0
		}
	}
	return 0
}
