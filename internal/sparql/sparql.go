// Package sparql parses a practical subset of SPARQL into the form the
// query engine evaluates. The paper positions Inferray as the
// storage-and-inference layer *under* a SPARQL engine (§1: triple
// stores "support SPARQL, a mature, feature-rich query language");
// after materialization every SPARQL basic graph pattern is answerable
// by plain index scans, which this front-end exposes.
//
// Supported: PREFIX declarations, SELECT (with DISTINCT, a projection
// list of variables and aggregates, or *) and ASK query forms, WHERE
// with a basic graph pattern (predicate-object lists with ';' and
// object lists with ',' included) or a UNION of braced groups, OPTIONAL
// blocks, BIND(expr AS ?var), inline VALUES data, FILTER (comparisons,
// logical connectives, regex, bound), GROUP BY with COUNT/SUM/MIN/MAX/
// AVG, ORDER BY (ASC/DESC), LIMIT, and OFFSET. The exact grammar, the
// term syntax, and the error message for every rejected construct
// (MINUS, property paths, subqueries, …) are documented in
// docs/SPARQL.md.
//
// Every parse failure is a *ParseError carrying the 1-based line and
// column of the offending token, so callers (the HTTP endpoint, the
// CLI) can point at the exact spot.
package sparql

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Form distinguishes the supported query forms.
type Form int

// The query forms ParseQuery accepts.
const (
	FormSelect Form = iota
	FormAsk
)

// Query is a parsed SELECT or ASK query.
type Query struct {
	// Form is the query form: FormSelect or FormAsk.
	Form Form
	// Distinct is set by SELECT DISTINCT (and REDUCED, which this
	// dialect treats as DISTINCT — the spec permits any amount of
	// duplicate elimination under REDUCED).
	Distinct bool
	// Vars is the projection's output column names in declaration
	// order; empty means SELECT * (project every variable in order of
	// first appearance).
	Vars []string
	// Items is the structured projection, parallel to Vars: one entry
	// per projected column, plain variable or aggregate. Empty for
	// SELECT *.
	Items []SelectItem
	// GroupBy lists the GROUP BY keys (variable names without '?').
	GroupBy []string
	// Groups holds the UNION branches of the WHERE clause; a query
	// without UNION has exactly one group.
	Groups []Group
	// OrderBy lists the ORDER BY keys in priority order.
	OrderBy []OrderKey
	// Limit bounds the number of solutions when HasLimit is set.
	Limit    int
	HasLimit bool
	// Offset skips the first Offset solutions.
	Offset int
}

// HasAggregates reports whether any projection item is an aggregate
// (the query then runs through the grouping stage even without an
// explicit GROUP BY clause).
func (q *Query) HasAggregates() bool {
	for _, it := range q.Items {
		if it.Agg != nil {
			return true
		}
	}
	return false
}

// SelectItem is one projected column: a plain variable, or an
// aggregate written as (AGG(...) AS ?name).
type SelectItem struct {
	// Name is the output column (variable name without '?').
	Name string
	// Agg is the aggregate call; nil for a plain variable.
	Agg *Aggregate
}

// Group is one UNION branch: a basic graph pattern plus the OPTIONAL
// blocks, BINDs, VALUES data, and FILTER constraints written inside its
// braces.
type Group struct {
	// Patterns is the basic graph pattern; terms are N-Triples surface
	// forms, with variables as "?name".
	Patterns [][3]string
	// Optionals are the group's OPTIONAL blocks, left-joined in order
	// after Patterns.
	Optionals []Optional
	// Binds are the group's BIND(expr AS ?var) assignments, evaluated
	// in order after the graph patterns.
	Binds []Bind
	// Values are the group's inline VALUES blocks, each joined with the
	// group's solutions.
	Values []Values
	// Filters are the group's FILTER constraints; a solution must pass
	// all of them.
	Filters []Expr
}

// Optional is one OPTIONAL block: a basic graph pattern plus FILTERs
// that are part of the left-join condition (SPARQL's three-valued
// semantics: a filter that errors on unbound rejects only the
// extension, never the base solution).
type Optional struct {
	// Patterns is the OPTIONAL block's basic graph pattern.
	Patterns [][3]string
	// Filters constrain the block's extensions.
	Filters []Expr
}

// Bind is one BIND(expr AS ?var) assignment. When the expression
// errors for a solution (unbound variable, type mismatch), the target
// is left unbound, per SPARQL.
type Bind struct {
	// Var is the target variable name without '?'.
	Var string
	// Expr is the bound expression.
	Expr Expr
}

// Values is one inline VALUES data block.
type Values struct {
	// Vars are the block's variable names without '?'.
	Vars []string
	// Rows holds one term surface form per variable per row; "" is
	// UNDEF (compatible with anything).
	Rows [][]string
}

// OrderKey is one ORDER BY sort key.
type OrderKey struct {
	Var  string // variable name without '?'
	Desc bool   // DESC(...) inverts the order
}

// ParseError reports a parse failure with its position. Line and Col
// are 1-based; Token is the offending token's text, empty when the
// query ended too early.
type ParseError struct {
	Msg   string
	Line  int
	Col   int
	Token string
}

// Error formats the failure with its position, e.g.
// `sparql: MINUS is not supported at line 3:5 (near "MINUS")`.
func (e *ParseError) Error() string {
	if e.Token == "" {
		return fmt.Sprintf("sparql: %s at end of query", e.Msg)
	}
	return fmt.Sprintf("sparql: %s at line %d:%d (near %q)", e.Msg, e.Line, e.Col, e.Token)
}

// ParseQuery parses a SELECT or ASK query.
func ParseQuery(text string) (*Query, error) {
	p := &parser{src: text, toks: tokenize(text)}
	q := &Query{}
	prefixes := map[string]string{}

	for p.peekKeyword("PREFIX") {
		p.next()
		label, ok := p.nextPrefixLabel()
		if !ok {
			return nil, p.errHere("expected prefix label after PREFIX")
		}
		iri, ok := p.nextIRI()
		if !ok {
			return nil, p.errHere("expected IRI after prefix label")
		}
		prefixes[label] = iri
	}

	switch {
	case p.peekKeyword("SELECT"):
		q.Form = FormSelect
		p.next()
		if err := p.parseProjection(q); err != nil {
			return nil, err
		}
	case p.peekKeyword("ASK"):
		q.Form = FormAsk
		p.next()
	case p.peekKeyword("CONSTRUCT"), p.peekKeyword("DESCRIBE"):
		return nil, p.errHere("only SELECT and ASK query forms are supported")
	case p.peekKeyword("INSERT"), p.peekKeyword("DELETE"):
		return nil, p.errHere("INSERT and DELETE are update operations; send them to the update endpoint")
	default:
		return nil, p.errHere("expected SELECT or ASK")
	}

	if p.peekKeyword("WHERE") {
		p.next()
	}
	groups, err := p.parseWhere(prefixes)
	if err != nil {
		return nil, err
	}
	q.Groups = groups

	if err := p.parseModifiers(q); err != nil {
		return nil, err
	}
	if tok := p.peek(); tok != "" {
		for _, kw := range []string{"OPTIONAL", "UNION", "VALUES", "BIND", "FILTER"} {
			if strings.EqualFold(tok, kw) {
				return nil, p.errHere("%s must appear inside the WHERE clause", kw)
			}
		}
		switch {
		case strings.EqualFold(tok, "GROUP"):
			return nil, p.errHere("GROUP BY must appear before ORDER BY")
		case strings.EqualFold(tok, "HAVING"):
			return nil, p.errHere("HAVING is not supported")
		case strings.EqualFold(tok, "MINUS"):
			return nil, p.errHere("MINUS is not supported")
		}
		return nil, p.errHere("unsupported or trailing syntax")
	}
	for _, g := range q.Groups {
		if len(g.Patterns) == 0 && len(g.Optionals) == 0 &&
			len(g.Binds) == 0 && len(g.Values) == 0 {
			return nil, p.errHere("empty basic graph pattern")
		}
	}
	if err := p.validateGrouping(q); err != nil {
		return nil, err
	}
	return q, nil
}

// validateGrouping enforces the SPARQL grouping rules that need the
// whole query: aggregates and GROUP BY only in SELECT, no SELECT *
// under GROUP BY, plain projected variables covered by GROUP BY, and
// aggregate aliases distinct from every WHERE-clause variable.
func (p *parser) validateGrouping(q *Query) error {
	if q.Form == FormAsk {
		if len(q.GroupBy) > 0 {
			return p.errHere("GROUP BY is only valid in a SELECT query")
		}
		return nil
	}
	hasAgg := q.HasAggregates()
	if !hasAgg && len(q.GroupBy) == 0 {
		return nil
	}
	if len(q.Vars) == 0 {
		return p.errHere("SELECT * cannot be combined with GROUP BY")
	}
	grouped := map[string]bool{}
	for _, v := range q.GroupBy {
		grouped[v] = true
	}
	whereVars := map[string]bool{}
	for _, g := range q.Groups {
		for v := range groupVars(g) {
			whereVars[v] = true
		}
	}
	seen := map[string]bool{}
	for _, it := range q.Items {
		if seen[it.Name] && it.Agg != nil {
			return p.errHere("duplicate projection name ?%s", it.Name)
		}
		seen[it.Name] = true
		if it.Agg == nil {
			if !grouped[it.Name] {
				return p.errHere("variable ?%s must appear in GROUP BY or inside an aggregate", it.Name)
			}
			continue
		}
		if whereVars[it.Name] {
			return p.errHere("AS ?%s would rebind a WHERE-clause variable", it.Name)
		}
	}
	return nil
}

// groupVars collects every variable a group can bind: triple-pattern
// variables (required and OPTIONAL), BIND targets, and VALUES
// variables.
func groupVars(g Group) map[string]bool {
	vars := map[string]bool{}
	addPatterns := func(pats [][3]string) {
		for _, pat := range pats {
			for _, t := range pat {
				if strings.HasPrefix(t, "?") {
					vars[t[1:]] = true
				}
			}
		}
	}
	addPatterns(g.Patterns)
	for _, o := range g.Optionals {
		addPatterns(o.Patterns)
	}
	for _, b := range g.Binds {
		vars[b.Var] = true
	}
	for _, v := range g.Values {
		for _, name := range v.Vars {
			vars[name] = true
		}
	}
	return vars
}

// ParseSelect parses a SELECT query; an ASK query is an error (use
// ParseQuery when both forms are acceptable).
func ParseSelect(text string) (*Query, error) {
	q, err := ParseQuery(text)
	if err != nil {
		return nil, err
	}
	if q.Form != FormSelect {
		return nil, &ParseError{Msg: "expected a SELECT query (got ASK)", Line: 1, Col: 1, Token: "ASK"}
	}
	return q, nil
}

// aggNames maps the projection's aggregate keywords to their functions.
var aggNames = map[string]AggFunc{
	"COUNT": AggCount,
	"SUM":   AggSum,
	"MIN":   AggMin,
	"MAX":   AggMax,
	"AVG":   AggAvg,
}

// parseProjection reads DISTINCT/REDUCED and the projection list — a
// mix of plain ?variables and (AGG(...) AS ?name) items — or *.
func (p *parser) parseProjection(q *Query) error {
	if p.peekKeyword("DISTINCT") || p.peekKeyword("REDUCED") {
		q.Distinct = true
		p.next()
	}
	if p.peekTok("*") {
		p.next()
		return nil
	}
	for {
		switch {
		case strings.HasPrefix(p.peek(), "?"):
			tok := p.next()
			if len(tok) == 1 {
				return p.errPrev("bare '?' is not a variable")
			}
			q.Vars = append(q.Vars, tok[1:])
			q.Items = append(q.Items, SelectItem{Name: tok[1:]})
			continue
		case p.peekTok("("):
			item, err := p.parseAggregateItem()
			if err != nil {
				return err
			}
			q.Vars = append(q.Vars, item.Name)
			q.Items = append(q.Items, item)
			continue
		}
		break
	}
	if len(q.Vars) == 0 {
		return p.errHere("SELECT needs a projection list or *")
	}
	return nil
}

// parseAggregateItem reads one (AGG([DISTINCT] ?var|*) AS ?name)
// projection item; the cursor sits on the opening '('.
func (p *parser) parseAggregateItem() (SelectItem, error) {
	var item SelectItem
	p.next() // consume '('
	fn, ok := aggNames[strings.ToUpper(p.peek())]
	if !ok {
		return item, p.errHere("expected an aggregate (COUNT, SUM, MIN, MAX, AVG) after '(' in the projection")
	}
	p.next()
	agg := &Aggregate{Func: fn}
	if !p.peekTok("(") {
		return item, p.errHere("expected '(' after the aggregate name")
	}
	p.next()
	if p.peekKeyword("DISTINCT") {
		agg.Distinct = true
		p.next()
	}
	switch {
	case p.peekTok("*"):
		if fn != AggCount {
			return item, p.errHere("only COUNT accepts *")
		}
		if agg.Distinct {
			return item, p.errHere("COUNT(DISTINCT *) is not supported")
		}
		agg.Star = true
		p.next()
	default:
		v, err := p.nextVar()
		if err != nil {
			return item, err
		}
		agg.Var = v
	}
	if !p.peekTok(")") {
		return item, p.errHere("expected ')' to close the aggregate argument")
	}
	p.next()
	if !p.peekKeyword("AS") {
		return item, p.errHere("expected AS in (aggregate AS ?name)")
	}
	p.next()
	name, err := p.nextVar()
	if err != nil {
		return item, err
	}
	if !p.peekTok(")") {
		return item, p.errHere("expected ')' to close the projection item")
	}
	p.next()
	item.Name = name
	item.Agg = agg
	return item, nil
}

// parseWhere reads the braced WHERE clause: either one group body or a
// chain of braced groups joined by UNION.
func (p *parser) parseWhere(prefixes map[string]string) ([]Group, error) {
	if !p.peekTok("{") {
		return nil, p.errHere("expected '{' to open the WHERE clause")
	}
	p.next()

	if p.peekTok("{") {
		// UNION form: every branch is a braced group, and the branches
		// are the entire clause.
		var groups []Group
		for {
			g, err := p.parseBracedGroup(prefixes)
			if err != nil {
				return nil, err
			}
			groups = append(groups, g)
			if p.peekKeyword("UNION") {
				p.next()
				if !p.peekTok("{") {
					return nil, p.errHere("expected '{' after UNION")
				}
				continue
			}
			break
		}
		if !p.peekTok("}") {
			return nil, p.errHere("UNION branches must make up the whole WHERE clause")
		}
		p.next()
		return groups, nil
	}

	g, err := p.parseGroupBody(prefixes, false)
	if err != nil {
		return nil, err
	}
	p.next() // consume '}'
	return []Group{g}, nil
}

// parseBracedGroup parses '{' body '}' (one UNION branch).
func (p *parser) parseBracedGroup(prefixes map[string]string) (Group, error) {
	p.next() // consume '{'
	if p.peekKeyword("SELECT") {
		return Group{}, p.errHere("subqueries are not supported")
	}
	g, err := p.parseGroupBody(prefixes, false)
	if err != nil {
		return Group{}, err
	}
	p.next() // consume '}'
	return g, nil
}

// parseGroupBody parses triple patterns (with ';' predicate-object
// lists and ',' object lists), OPTIONAL blocks, BINDs, VALUES data,
// and FILTERs up to (not consuming) the closing '}'. inOptional
// restricts the body to patterns and FILTERs (no nesting).
func (p *parser) parseGroupBody(prefixes map[string]string, inOptional bool) (Group, error) {
	var g Group
	var bindPos []int // token index of each BIND, for rebind errors
	for !p.peekTok("}") {
		tok := p.peek()
		switch {
		case tok == "":
			return g, p.errHere("unexpected end of query inside group (missing '}')")
		case p.peekKeyword("FILTER"):
			p.next()
			e, err := p.parseConstraint(prefixes)
			if err != nil {
				return g, err
			}
			g.Filters = append(g.Filters, e)
			if p.peekTok(".") {
				p.next()
			}
			continue
		case p.peekKeyword("OPTIONAL"):
			if inOptional {
				return g, p.errHere("nested OPTIONAL is not supported")
			}
			p.next()
			if !p.peekTok("{") {
				return g, p.errHere("expected '{' after OPTIONAL")
			}
			p.next()
			og, err := p.parseGroupBody(prefixes, true)
			if err != nil {
				return g, err
			}
			if len(og.Patterns) == 0 {
				return g, p.errHere("OPTIONAL needs at least one triple pattern")
			}
			p.next() // consume '}'
			g.Optionals = append(g.Optionals, Optional{Patterns: og.Patterns, Filters: og.Filters})
			if p.peekTok(".") {
				p.next()
			}
			continue
		case p.peekKeyword("BIND"):
			if inOptional {
				return g, p.errHere("BIND inside OPTIONAL is not supported")
			}
			bindPos = append(bindPos, p.pos)
			p.next()
			b, err := p.parseBind(prefixes)
			if err != nil {
				return g, err
			}
			g.Binds = append(g.Binds, b)
			if p.peekTok(".") {
				p.next()
			}
			continue
		case p.peekKeyword("VALUES"):
			if inOptional {
				return g, p.errHere("VALUES inside OPTIONAL is not supported")
			}
			p.next()
			v, err := p.parseValues(prefixes)
			if err != nil {
				return g, err
			}
			g.Values = append(g.Values, v)
			if p.peekTok(".") {
				p.next()
			}
			continue
		case p.peekKeyword("MINUS"):
			return g, p.errHere("MINUS is not supported")
		case p.peekKeyword("GRAPH"):
			return g, p.errHere("GRAPH is not supported")
		case p.peekKeyword("SERVICE"):
			return g, p.errHere("SERVICE is not supported")
		case p.peekKeyword("UNION"):
			return g, p.errHere("UNION must combine braced groups ({ … } UNION { … })")
		case tok == "{":
			if p.peekAheadKeyword(1, "SELECT") {
				p.next()
				return g, p.errHere("subqueries are not supported")
			}
			return g, p.errHere("nested group patterns are not supported (UNION branches must be the entire WHERE clause)")
		}

		if err := p.parseTriplesBlock(&g, prefixes); err != nil {
			return g, err
		}
		if p.peekTok(".") {
			p.next()
		}
	}
	// SPARQL scoping: BIND may not rebind a variable the group already
	// binds. This dialect evaluates BINDs after the graph patterns, so
	// the target must be fresh with respect to the whole group —
	// pattern variables (required and OPTIONAL) and VALUES variables
	// alike, plus every earlier BIND (checked sequentially, hence the
	// bind-free Group handed to groupVars).
	bound := groupVars(Group{Patterns: g.Patterns, Optionals: g.Optionals, Values: g.Values})
	for i, b := range g.Binds {
		if bound[b.Var] {
			return g, p.errAtIndex(bindPos[i], "BIND target ?%s is already bound in the group", b.Var)
		}
		bound[b.Var] = true
	}
	return g, nil
}

// parseTriplesBlock parses one subject with its predicate-object list:
// `s p o`, extended by `, o2` (same subject and predicate) and
// `; p2 o3` (same subject). A trailing ';' before '.' or '}' is
// accepted, as in SPARQL.
func (p *parser) parseTriplesBlock(g *Group, prefixes map[string]string) error {
	subj, err := p.patternTerm(0, prefixes)
	if err != nil {
		return err
	}
	for {
		pred, err := p.patternTerm(1, prefixes)
		if err != nil {
			return err
		}
		if isPathToken(p.peek()) {
			return p.errHere("property paths are not supported")
		}
		for {
			obj, err := p.patternTerm(2, prefixes)
			if err != nil {
				return err
			}
			g.Patterns = append(g.Patterns, [3]string{subj, pred, obj})
			if p.peekTok(",") {
				p.next()
				continue
			}
			break
		}
		if p.peekTok(";") {
			p.next()
			for p.peekTok(";") { // empty list entries are legal
				p.next()
			}
			if p.peekTok(".") || p.peekTok("}") {
				break // trailing ';'
			}
			continue
		}
		break
	}
	return nil
}

// patternTerm reads one triple-pattern term at position pos
// (0=subject, 1=predicate, 2=object) and resolves it to an N-Triples
// surface form.
func (p *parser) patternTerm(pos int, prefixes map[string]string) (string, error) {
	tok := p.peek()
	switch {
	case tok == "":
		return "", p.errHere("unexpected end of query in triple pattern")
	case isPathToken(tok):
		return "", p.errHere("property paths are not supported")
	case tok == ";" || tok == "," || tok == ".":
		return "", p.errHere("unexpected %q in triple pattern", tok)
	}
	p.next()
	term, err := resolveTerm(tok, pos == 1, prefixes)
	if err != nil {
		return "", p.errPrev("%s", err)
	}
	return term, nil
}

// parseBind reads `( expr AS ?var )`; the BIND keyword is consumed.
func (p *parser) parseBind(prefixes map[string]string) (Bind, error) {
	var b Bind
	if !p.peekTok("(") {
		return b, p.errHere("expected '(' after BIND")
	}
	p.next()
	e, err := p.parseExpr(prefixes)
	if err != nil {
		return b, err
	}
	if !p.peekKeyword("AS") {
		return b, p.errHere("expected AS in BIND(expr AS ?var)")
	}
	p.next()
	v, err := p.nextVar()
	if err != nil {
		return b, err
	}
	if !p.peekTok(")") {
		return b, p.errHere("expected ')' to close BIND")
	}
	p.next()
	b.Var = v
	b.Expr = e
	return b, nil
}

// parseValues reads an inline data block; the VALUES keyword is
// consumed. Single-variable form `?v { t … }` and full form
// `( ?v … ) { ( t … ) … }` are both accepted; UNDEF leaves a cell
// unbound.
func (p *parser) parseValues(prefixes map[string]string) (Values, error) {
	var v Values
	switch {
	case strings.HasPrefix(p.peek(), "?"):
		name, err := p.nextVar()
		if err != nil {
			return v, err
		}
		v.Vars = []string{name}
		if !p.peekTok("{") {
			return v, p.errHere("expected '{' to open the VALUES data block")
		}
		p.next()
		for !p.peekTok("}") {
			term, err := p.valuesTerm(prefixes)
			if err != nil {
				return v, err
			}
			v.Rows = append(v.Rows, []string{term})
		}
		p.next()
	case p.peekTok("("):
		p.next()
		for strings.HasPrefix(p.peek(), "?") {
			name, err := p.nextVar()
			if err != nil {
				return v, err
			}
			v.Vars = append(v.Vars, name)
		}
		if len(v.Vars) == 0 {
			return v, p.errHere("VALUES needs at least one variable")
		}
		if !p.peekTok(")") {
			return v, p.errHere("expected ')' to close the VALUES variable list")
		}
		p.next()
		if !p.peekTok("{") {
			return v, p.errHere("expected '{' to open the VALUES data block")
		}
		p.next()
		for !p.peekTok("}") {
			if !p.peekTok("(") {
				return v, p.errHere("expected '(' to open a VALUES row")
			}
			p.next()
			var row []string
			for !p.peekTok(")") {
				term, err := p.valuesTerm(prefixes)
				if err != nil {
					return v, err
				}
				row = append(row, term)
			}
			p.next()
			if len(row) != len(v.Vars) {
				return v, p.errPrev("VALUES row has %d terms, want %d", len(row), len(v.Vars))
			}
			v.Rows = append(v.Rows, row)
		}
		p.next()
	default:
		return v, p.errHere("VALUES needs a ?variable or a parenthesized variable list")
	}
	return v, nil
}

// valuesTerm reads one VALUES cell: a constant term or UNDEF ("").
func (p *parser) valuesTerm(prefixes map[string]string) (string, error) {
	tok := p.peek()
	switch {
	case tok == "":
		return "", p.errHere("unexpected end of query in VALUES data block")
	case strings.EqualFold(tok, "UNDEF"):
		p.next()
		return "", nil
	case strings.HasPrefix(tok, "?"):
		return "", p.errHere("variables cannot appear in VALUES data")
	}
	p.next()
	term, err := resolveTerm(tok, false, prefixes)
	if err != nil {
		return "", p.errPrev("%s", err)
	}
	return term, nil
}

// expandLiteralDatatype rewrites a prefixed datatype ("5"^^xsd:int)
// into the full-IRI surface form the store uses ("5"^^<...#int>); a
// literal with a full-IRI datatype, a language tag, or no suffix passes
// through unchanged. Without the expansion the prefixed form would
// silently match nothing (the dictionary only knows full IRIs).
func expandLiteralDatatype(tok string, prefixes map[string]string) (string, error) {
	end := literalLexEnd(tok)
	suffix := tok[end:]
	if !strings.HasPrefix(suffix, "^^") || strings.HasPrefix(suffix, "^^<") {
		return tok, nil
	}
	dt := suffix[2:]
	colon := strings.IndexByte(dt, ':')
	if colon < 0 {
		return "", fmt.Errorf("cannot parse literal datatype %q", dt)
	}
	ns, ok := prefixes[dt[:colon]]
	if !ok {
		return "", fmt.Errorf("undefined prefix %q in literal datatype", dt[:colon])
	}
	return tok[:end] + "^^<" + ns + dt[colon+1:] + ">", nil
}

// isPathToken reports whether tok is a SPARQL property-path operator.
func isPathToken(tok string) bool {
	switch tok {
	case "/", "|", "^", "*", "+":
		return true
	}
	return false
}

// parseModifiers reads GROUP BY, ORDER BY, LIMIT, and OFFSET (LIMIT
// and OFFSET in either order, each at most once).
func (p *parser) parseModifiers(q *Query) error {
	if p.peekKeyword("GROUP") {
		p.next()
		if !p.peekKeyword("BY") {
			return p.errHere("expected BY after GROUP")
		}
		p.next()
		for strings.HasPrefix(p.peek(), "?") {
			v, err := p.nextVar()
			if err != nil {
				return err
			}
			q.GroupBy = append(q.GroupBy, v)
		}
		if len(q.GroupBy) == 0 {
			return p.errHere("GROUP BY needs at least one ?var key")
		}
	}
	if p.peekKeyword("HAVING") {
		return p.errHere("HAVING is not supported")
	}
	if p.peekKeyword("ORDER") {
		p.next()
		if !p.peekKeyword("BY") {
			return p.errHere("expected BY after ORDER")
		}
		p.next()
	orderKeys:
		for {
			switch {
			case p.peekKeyword("ASC"), p.peekKeyword("DESC"):
				desc := p.peekKeyword("DESC")
				p.next()
				if !p.peekTok("(") {
					return p.errHere("expected '(' after ASC/DESC")
				}
				p.next()
				v, err := p.nextVar()
				if err != nil {
					return err
				}
				if !p.peekTok(")") {
					return p.errHere("expected ')' to close ASC/DESC")
				}
				p.next()
				q.OrderBy = append(q.OrderBy, OrderKey{Var: v, Desc: desc})
			case strings.HasPrefix(p.peek(), "?"):
				v, err := p.nextVar()
				if err != nil {
					return err
				}
				q.OrderBy = append(q.OrderBy, OrderKey{Var: v})
			default:
				if len(q.OrderBy) == 0 {
					return p.errHere("ORDER BY needs at least one ?var, ASC(?var), or DESC(?var) key")
				}
				break orderKeys
			}
		}
	}
	seenOffset := false
	for p.peekKeyword("LIMIT") || p.peekKeyword("OFFSET") {
		isLimit := p.peekKeyword("LIMIT")
		p.next()
		n, err := p.nextNonNegativeInt()
		if err != nil {
			if isLimit {
				return p.errHere("LIMIT needs a non-negative integer")
			}
			return p.errHere("OFFSET needs a non-negative integer")
		}
		if isLimit {
			if q.HasLimit {
				return p.errPrev("duplicate LIMIT")
			}
			q.Limit, q.HasLimit = n, true
		} else {
			if seenOffset {
				return p.errPrev("duplicate OFFSET")
			}
			q.Offset, seenOffset = n, true
		}
	}
	return nil
}

// resolveTerm converts one token into an N-Triples surface form. A
// bare number outside predicate position denotes the plain literal
// with that lexical form (the dialect's numeric widening makes it
// compare numerically in FILTERs).
func resolveTerm(tok string, predicatePos bool, prefixes map[string]string) (string, error) {
	switch {
	case tok == "a" && predicatePos:
		return "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>", nil
	case strings.HasPrefix(tok, "?"):
		if len(tok) == 1 {
			return "", fmt.Errorf("bare '?' is not a variable")
		}
		return tok, nil
	case strings.HasPrefix(tok, "<"):
		if !strings.HasSuffix(tok, ">") {
			return "", fmt.Errorf("unterminated IRI %q", tok)
		}
		return tok, nil
	case strings.HasPrefix(tok, `"`):
		return expandLiteralDatatype(tok, prefixes)
	case strings.HasPrefix(tok, "_:"):
		return tok, nil
	default:
		// The ParseFloat check after the lexical gate rejects
		// range-overflowing tokens (1e999) here exactly as the FILTER
		// operand parser does.
		if !predicatePos && numericLexical(tok) {
			if _, err := strconv.ParseFloat(tok, 64); err == nil {
				return `"` + tok + `"`, nil
			}
		}
		colon := strings.IndexByte(tok, ':')
		if colon < 0 {
			return "", fmt.Errorf("cannot parse term %q", tok)
		}
		ns, ok := prefixes[tok[:colon]]
		if !ok {
			return "", fmt.Errorf("undefined prefix %q", tok[:colon])
		}
		return "<" + ns + tok[colon+1:] + ">", nil
	}
}

// numericLexical reports whether tok spells a SPARQL numeric literal:
// an optional sign, digits with at most one decimal point (at least
// one digit total), and an optional exponent. Deliberately stricter
// than strconv.ParseFloat, which also accepts NaN, Inf, hex floats,
// and underscore-grouped digits — none of which should silently
// become an unmatchable literal instead of a parse error.
func numericLexical(tok string) bool {
	i := 0
	if i < len(tok) && (tok[i] == '+' || tok[i] == '-') {
		i++
	}
	digits, dot := 0, false
	for i < len(tok) {
		switch c := tok[i]; {
		case c >= '0' && c <= '9':
			digits++
		case c == '.' && !dot:
			dot = true
		default:
			goto exponent
		}
		i++
	}
exponent:
	if digits == 0 {
		return false
	}
	if i == len(tok) {
		return true
	}
	if tok[i] != 'e' && tok[i] != 'E' {
		return false
	}
	i++
	if i < len(tok) && (tok[i] == '+' || tok[i] == '-') {
		i++
	}
	if i == len(tok) {
		return false
	}
	for ; i < len(tok); i++ {
		if tok[i] < '0' || tok[i] > '9' {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------- parser

// token is one lexed token with its byte offset in the source.
type token struct {
	text string
	off  int
}

// parser is a token cursor over the positioned token stream.
type parser struct {
	src  string
	toks []token
	pos  int
}

func (p *parser) peek() string {
	if p.pos >= len(p.toks) {
		return ""
	}
	return p.toks[p.pos].text
}

func (p *parser) next() string {
	t := p.peek()
	if t != "" {
		p.pos++
	}
	return t
}

func (p *parser) peekTok(s string) bool { return p.peek() == s }

func (p *parser) peekKeyword(kw string) bool {
	return strings.EqualFold(p.peek(), kw)
}

// peekAheadKeyword looks n tokens past the cursor.
func (p *parser) peekAheadKeyword(n int, kw string) bool {
	if p.pos+n >= len(p.toks) {
		return false
	}
	return strings.EqualFold(p.toks[p.pos+n].text, kw)
}

func (p *parser) nextPrefixLabel() (string, bool) {
	t := p.next()
	if !strings.HasSuffix(t, ":") {
		return "", false
	}
	return strings.TrimSuffix(t, ":"), true
}

func (p *parser) nextIRI() (string, bool) {
	t := p.next()
	if strings.HasPrefix(t, "<") && strings.HasSuffix(t, ">") {
		return strings.TrimPrefix(strings.TrimSuffix(t, ">"), "<"), true
	}
	return "", false
}

func (p *parser) nextVar() (string, error) {
	t := p.peek()
	if !strings.HasPrefix(t, "?") || len(t) == 1 {
		return "", p.errHere("expected a ?variable")
	}
	p.next()
	return t[1:], nil
}

func (p *parser) nextNonNegativeInt() (int, error) {
	n, err := strconv.Atoi(p.peek())
	if err != nil || n < 0 {
		return 0, fmt.Errorf("not a non-negative integer")
	}
	p.next()
	return n, nil
}

// errHere builds a ParseError at the current token (or end of input).
func (p *parser) errHere(format string, args ...interface{}) error {
	return p.errAtIndex(p.pos, format, args...)
}

// errPrev builds a ParseError at the token just consumed.
func (p *parser) errPrev(format string, args ...interface{}) error {
	i := p.pos - 1
	if i < 0 {
		i = 0
	}
	return p.errAtIndex(i, format, args...)
}

func (p *parser) errAtIndex(i int, format string, args ...interface{}) error {
	e := &ParseError{Msg: fmt.Sprintf(format, args...)}
	var off int
	if i < len(p.toks) {
		e.Token = p.toks[i].text
		off = p.toks[i].off
	} else {
		off = len(p.src)
	}
	e.Line, e.Col = lineCol(p.src, off)
	return e
}

// lineCol converts a byte offset into a 1-based line and column.
func lineCol(src string, off int) (line, col int) {
	if off > len(src) {
		off = len(src)
	}
	line = 1 + strings.Count(src[:off], "\n")
	if i := strings.LastIndexByte(src[:off], '\n'); i >= 0 {
		col = off - i
	} else {
		col = off + 1
	}
	return line, col
}

// -------------------------------------------------------------- tokenizer

// tokenize splits query text into positioned tokens: punctuation and
// operators ({ } ( ) , ; . = != < <= > >= && || ! / | ^ * +), IRIs,
// literals (kept intact with tags/datatypes), and words. Comments (#)
// run to end of line. A '<' opens an IRI only when a '>' closes it
// before any whitespace; otherwise it lexes as a comparison operator,
// which is what FILTER expressions need.
func tokenize(text string) []token {
	var toks []token
	emit := func(s string, off int) { toks = append(toks, token{text: s, off: off}) }
	i := 0
	n := len(text)
	for i < n {
		c := text[i]
		switch {
		case c == '#':
			for i < n && text[i] != '\n' {
				i++
			}
		case unicode.IsSpace(rune(c)):
			i++
		case c == '{' || c == '}' || c == '(' || c == ')' || c == ',' || c == ';' ||
			c == '/' || c == '*' || c == '+' || c == '^' || c == '=':
			emit(string(c), i)
			i++
		case c == '.':
			emit(".", i)
			i++
		case c == '!':
			if i+1 < n && text[i+1] == '=' {
				emit("!=", i)
				i += 2
			} else {
				emit("!", i)
				i++
			}
		case c == '&':
			if i+1 < n && text[i+1] == '&' {
				emit("&&", i)
				i += 2
			} else {
				emit("&", i)
				i++
			}
		case c == '|':
			if i+1 < n && text[i+1] == '|' {
				emit("||", i)
				i += 2
			} else {
				emit("|", i)
				i++
			}
		case c == '>':
			if i+1 < n && text[i+1] == '=' {
				emit(">=", i)
				i += 2
			} else {
				emit(">", i)
				i++
			}
		case c == '<':
			// IRI iff a '>' appears before any whitespace; else operator.
			if j := iriEnd(text, i); j > 0 {
				emit(text[i:j], i)
				i = j
			} else if i+1 < n && text[i+1] == '=' {
				emit("<=", i)
				i += 2
			} else {
				emit("<", i)
				i++
			}
		case c == '"':
			j := i + 1
			for j < n {
				if text[j] == '\\' {
					j += 2
					continue
				}
				if text[j] == '"' {
					break
				}
				j++
			}
			if j >= n {
				emit(text[i:], i)
				return toks
			}
			j++ // past closing quote
			// Attach language tag or datatype.
			if j < n && text[j] == '@' {
				for j < n && !unicode.IsSpace(rune(text[j])) &&
					text[j] != '.' && text[j] != '}' && text[j] != ')' && text[j] != ',' {
					j++
				}
			} else if j+1 < n && text[j] == '^' && text[j+1] == '^' {
				j += 2
				if j < n && text[j] == '<' {
					if k := strings.IndexByte(text[j:], '>'); k >= 0 {
						j += k + 1
					}
				} else {
					// prefixed datatype: runs to the next breaker
					for j < n && !unicode.IsSpace(rune(text[j])) && !isBreaker(text[j]) {
						j++
					}
				}
			}
			emit(text[i:j], i)
			i = j
		default:
			j := i
			for j < n && !unicode.IsSpace(rune(text[j])) && !isBreaker(text[j]) {
				// A '.' ends a token unless it is inside a prefixed
				// local name or decimal followed by more name characters.
				if text[j] == '.' {
					if j+1 >= n || unicode.IsSpace(rune(text[j+1])) ||
						text[j+1] == '}' || text[j+1] == ')' {
						break
					}
				}
				j++
			}
			if j == i { // defensive: always make progress
				emit(string(text[i]), i)
				i++
				continue
			}
			emit(text[i:j], i)
			i = j
		}
	}
	return toks
}

// isBreaker reports whether c always terminates a word token.
func isBreaker(c byte) bool {
	switch c {
	case '{', '}', '(', ')', ',', ';', '#', '=', '!', '<', '>', '&', '|', '^', '/', '*', '+', '"':
		return true
	}
	return false
}

// iriEnd returns the index just past the closing '>' of an IRI starting
// at text[i] == '<', or 0 when no '>' occurs before whitespace (then
// '<' is an operator).
func iriEnd(text string, i int) int {
	for j := i + 1; j < len(text); j++ {
		c := text[j]
		if c == '>' {
			return j + 1
		}
		if unicode.IsSpace(rune(c)) {
			return 0
		}
	}
	return 0
}
