// Package sparql parses a practical subset of SPARQL SELECT queries
// into the triple-pattern form the query engine evaluates. The paper
// positions Inferray as the storage-and-inference layer *under* a
// SPARQL engine (§1: triple stores "support SPARQL, a mature,
// feature-rich query language"); after materialization every SPARQL
// basic graph pattern is answerable by plain index scans, which this
// front-end exposes.
//
// Supported: PREFIX declarations, SELECT with a projection list or *,
// WHERE with a basic graph pattern (triple patterns separated by '.'),
// the 'a' keyword, IRIs, prefixed names, literals (with language tags
// and datatypes), variables, and LIMIT. Not supported (rejected):
// FILTER, OPTIONAL, UNION, GROUP BY, property paths, subqueries.
package sparql

import (
	"fmt"
	"strings"
	"unicode"
)

// Query is a parsed SELECT query.
type Query struct {
	// Vars is the projection in declaration order; empty means SELECT *
	// (project every variable in order of first appearance).
	Vars []string
	// Patterns is the basic graph pattern; terms are N-Triples surface
	// forms, with variables as "?name".
	Patterns [][3]string
	// Limit bounds the number of solutions; 0 means unlimited.
	Limit int
}

// ParseSelect parses a SELECT query.
func ParseSelect(text string) (*Query, error) {
	p := &parser{toks: tokenize(text)}
	q := &Query{}
	prefixes := map[string]string{}

	for p.peekKeyword("PREFIX") {
		p.next()
		label, ok := p.nextPrefixLabel()
		if !ok {
			return nil, p.errf("expected prefix label after PREFIX")
		}
		iri, ok := p.nextIRI()
		if !ok {
			return nil, p.errf("expected IRI after prefix label")
		}
		prefixes[label] = iri
	}

	if !p.peekKeyword("SELECT") {
		return nil, p.errf("expected SELECT")
	}
	p.next()
	if p.peekTok("*") {
		p.next()
	} else {
		for strings.HasPrefix(p.peek(), "?") {
			q.Vars = append(q.Vars, strings.TrimPrefix(p.next(), "?"))
		}
		if len(q.Vars) == 0 {
			return nil, p.errf("SELECT needs a projection list or *")
		}
	}

	if !p.peekKeyword("WHERE") {
		return nil, p.errf("expected WHERE")
	}
	p.next()
	if !p.peekTok("{") {
		return nil, p.errf("expected '{' after WHERE")
	}
	p.next()

	for !p.peekTok("}") {
		var pat [3]string
		for i := 0; i < 3; i++ {
			tok := p.next()
			if tok == "" {
				return nil, p.errf("unexpected end of query in triple pattern")
			}
			term, err := resolveTerm(tok, i == 1, prefixes)
			if err != nil {
				return nil, err
			}
			pat[i] = term
		}
		q.Patterns = append(q.Patterns, pat)
		if p.peekTok(".") {
			p.next()
		}
	}
	p.next() // consume '}'

	if p.peekKeyword("LIMIT") {
		p.next()
		n := 0
		if _, err := fmt.Sscanf(p.next(), "%d", &n); err != nil || n < 0 {
			return nil, p.errf("LIMIT needs a non-negative integer")
		}
		q.Limit = n
	}
	if tok := p.peek(); tok != "" {
		return nil, p.errf("unsupported or trailing syntax at %q (FILTER/OPTIONAL/UNION are not supported)", tok)
	}
	if len(q.Patterns) == 0 {
		return nil, p.errf("empty basic graph pattern")
	}
	return q, nil
}

// resolveTerm converts one token into an N-Triples surface form.
func resolveTerm(tok string, predicatePos bool, prefixes map[string]string) (string, error) {
	switch {
	case tok == "a" && predicatePos:
		return "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>", nil
	case strings.HasPrefix(tok, "?"):
		if len(tok) == 1 {
			return "", fmt.Errorf("sparql: bare '?' is not a variable")
		}
		return tok, nil
	case strings.HasPrefix(tok, "<"):
		if !strings.HasSuffix(tok, ">") {
			return "", fmt.Errorf("sparql: unterminated IRI %q", tok)
		}
		return tok, nil
	case strings.HasPrefix(tok, `"`):
		return tok, nil
	case strings.HasPrefix(tok, "_:"):
		return tok, nil
	default:
		colon := strings.IndexByte(tok, ':')
		if colon < 0 {
			return "", fmt.Errorf("sparql: cannot parse term %q", tok)
		}
		ns, ok := prefixes[tok[:colon]]
		if !ok {
			return "", fmt.Errorf("sparql: undefined prefix %q", tok[:colon])
		}
		return "<" + ns + tok[colon+1:] + ">", nil
	}
}

// parser is a simple token cursor.
type parser struct {
	toks []string
	pos  int
}

func (p *parser) peek() string {
	if p.pos >= len(p.toks) {
		return ""
	}
	return p.toks[p.pos]
}

func (p *parser) next() string {
	t := p.peek()
	if t != "" {
		p.pos++
	}
	return t
}

func (p *parser) peekTok(s string) bool { return p.peek() == s }

func (p *parser) peekKeyword(kw string) bool {
	return strings.EqualFold(p.peek(), kw)
}

func (p *parser) nextPrefixLabel() (string, bool) {
	t := p.next()
	if !strings.HasSuffix(t, ":") {
		return "", false
	}
	return strings.TrimSuffix(t, ":"), true
}

func (p *parser) nextIRI() (string, bool) {
	t := p.next()
	if strings.HasPrefix(t, "<") && strings.HasSuffix(t, ">") {
		return strings.TrimPrefix(strings.TrimSuffix(t, ">"), "<"), true
	}
	return "", false
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sparql: %s (near token %d)", fmt.Sprintf(format, args...), p.pos)
}

// tokenize splits query text into tokens: punctuation ({ } .), IRIs,
// literals (kept intact with tags/datatypes), and whitespace-separated
// words. Comments (#) run to end of line.
func tokenize(text string) []string {
	var toks []string
	i := 0
	n := len(text)
	for i < n {
		c := text[i]
		switch {
		case c == '#':
			for i < n && text[i] != '\n' {
				i++
			}
		case unicode.IsSpace(rune(c)):
			i++
		case c == '{' || c == '}':
			toks = append(toks, string(c))
			i++
		case c == '.':
			toks = append(toks, ".")
			i++
		case c == '<':
			j := strings.IndexByte(text[i:], '>')
			if j < 0 {
				toks = append(toks, text[i:])
				return toks
			}
			toks = append(toks, text[i:i+j+1])
			i += j + 1
		case c == '"':
			j := i + 1
			for j < n {
				if text[j] == '\\' {
					j += 2
					continue
				}
				if text[j] == '"' {
					break
				}
				j++
			}
			if j >= n {
				toks = append(toks, text[i:])
				return toks
			}
			j++ // past closing quote
			// Attach language tag or datatype.
			if j < n && text[j] == '@' {
				for j < n && !unicode.IsSpace(rune(text[j])) && text[j] != '.' && text[j] != '}' {
					j++
				}
			} else if j+1 < n && text[j] == '^' && text[j+1] == '^' {
				j += 2
				if j < n && text[j] == '<' {
					if k := strings.IndexByte(text[j:], '>'); k >= 0 {
						j += k + 1
					}
				}
			}
			toks = append(toks, text[i:j])
			i = j
		default:
			j := i
			for j < n && !unicode.IsSpace(rune(text[j])) &&
				text[j] != '{' && text[j] != '}' && text[j] != '#' {
				// A '.' ends a token unless it is inside a prefixed
				// local name followed by more name characters.
				if text[j] == '.' {
					if j+1 >= n || unicode.IsSpace(rune(text[j+1])) || text[j+1] == '}' {
						break
					}
				}
				j++
			}
			toks = append(toks, text[i:j])
			i = j
		}
	}
	return toks
}
