package sparql

import (
	"strings"
	"testing"
)

// TestParseUpdateForms checks each supported operation parses into the
// expected structure.
func TestParseUpdateForms(t *testing.T) {
	u, err := ParseUpdate(`PREFIX ex: <http://e/>
		INSERT DATA { ex:a ex:p ex:b , ex:c ; a ex:T . <s> <q> "v"@en } ;
		DELETE DATA { ex:a ex:p ex:b } ;
		DELETE WHERE { ?x ex:p ?y . ?x a ex:T }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Ops) != 3 {
		t.Fatalf("got %d ops, want 3", len(u.Ops))
	}
	ins := u.Ops[0]
	if ins.Kind != UpdateInsertData {
		t.Errorf("op 0 kind = %v, want INSERT DATA", ins.Kind)
	}
	wantIns := [][3]string{
		{"<http://e/a>", "<http://e/p>", "<http://e/b>"},
		{"<http://e/a>", "<http://e/p>", "<http://e/c>"},
		{"<http://e/a>", "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>", "<http://e/T>"},
		{"<s>", "<q>", `"v"@en`},
	}
	if len(ins.Triples) != len(wantIns) {
		t.Fatalf("INSERT DATA parsed %d triples, want %d: %v", len(ins.Triples), len(wantIns), ins.Triples)
	}
	for i, w := range wantIns {
		if ins.Triples[i] != w {
			t.Errorf("INSERT DATA triple %d = %v, want %v", i, ins.Triples[i], w)
		}
	}
	if u.Ops[1].Kind != UpdateDeleteData || len(u.Ops[1].Triples) != 1 {
		t.Errorf("op 1 = %+v, want one DELETE DATA triple", u.Ops[1])
	}
	dw := u.Ops[2]
	if dw.Kind != UpdateDeleteWhere || len(dw.Patterns) != 2 {
		t.Fatalf("op 2 = %+v, want two DELETE WHERE patterns", dw)
	}
	if dw.Patterns[0] != [3]string{"?x", "<http://e/p>", "?y"} {
		t.Errorf("DELETE WHERE pattern 0 = %v", dw.Patterns[0])
	}
}

// TestParseUpdateBlankNodes pins the asymmetry: INSERT DATA accepts
// blank nodes, both DELETE forms reject them.
func TestParseUpdateBlankNodes(t *testing.T) {
	if _, err := ParseUpdate(`INSERT DATA { _:b <p> <o> }`); err != nil {
		t.Errorf("INSERT DATA with a blank node failed: %v", err)
	}
	for _, text := range []string{
		`DELETE DATA { _:b <p> <o> }`,
		`DELETE DATA { <s> <p> _:b }`,
		`DELETE WHERE { _:b <p> ?o }`,
	} {
		_, err := ParseUpdate(text)
		if err == nil || !strings.Contains(err.Error(), "blank nodes are not allowed") {
			t.Errorf("%s: err = %v, want blank-node rejection", text, err)
		}
	}
}

// TestParseUpdateRejections pins the error-message contract documented
// in docs/SPARQL.md.
func TestParseUpdateRejections(t *testing.T) {
	cases := map[string]string{
		`INSERT { ?s <p> <o> } WHERE { ?s a <T> }`:   "only INSERT DATA is supported",
		`DELETE { ?s <p> ?o } WHERE { ?s <p> ?o }`:   "only DELETE DATA and DELETE WHERE are supported",
		`INSERT DATA { ?s <p> <o> }`:                 "variables are not allowed in INSERT DATA",
		`DELETE DATA { <s> <p> ?o }`:                 "variables are not allowed in DELETE DATA",
		`DELETE WHERE { }`:                           "DELETE WHERE needs at least one triple pattern",
		`LOAD <http://e/g>`:                          "graph management operations are not supported",
		`CLEAR ALL`:                                  "graph management operations are not supported",
		`DROP GRAPH <g>`:                             "graph management operations are not supported",
		`WITH <g> DELETE WHERE { ?s ?p ?o }`:         "WITH/USING graph selection is not supported",
		`SELECT * WHERE { ?s ?p ?o }`:                "queries are not update operations",
		`INSERT DATA { GRAPH <g> { <s> <p> <o> } }`:  "GRAPH is not supported",
		`INSERT DATA { <s> <p> <o> } garbage`:        "unsupported or trailing syntax",
		`INSERT DATA { <s> <p>/<q> <o> }`:            "property paths are not supported",
		`DELETE WHERE { ?s ?p ?o FILTER(?p = <x>) }`: "holds only triples",
		``:                             "empty update request",
		`INSERT DATA { <s> <p>`:        "unexpected end of query in triple pattern",
		`INSERT DATA <s> <p> <o>`:      "expected '{'",
		`FOO DATA { <s> <p> <o> }`:     "expected an update operation",
		`PREFIX ex: <http://e/>`:       "empty update request",
		`INSERT DATA { <s> ex:p <o> }`: `undefined prefix "ex"`,
	}
	for text, want := range cases {
		_, err := ParseUpdate(text)
		if err == nil {
			t.Errorf("%q: parsed, want error containing %q", text, want)
			continue
		}
		if !strings.Contains(err.Error(), want) {
			t.Errorf("%q: err = %v, want it to contain %q", text, err, want)
		}
		if pe, ok := err.(*ParseError); ok {
			if pe.Line < 1 || pe.Col < 1 {
				t.Errorf("%q: non-positive error position %d:%d", text, pe.Line, pe.Col)
			}
		} else {
			t.Errorf("%q: error is %T, want *ParseError", text, err)
		}
	}
}

// TestParseQueryPointsAtUpdatePath checks the query parser's new
// rejection message for update keywords.
func TestParseQueryPointsAtUpdatePath(t *testing.T) {
	for _, text := range []string{
		`INSERT DATA { <s> <p> <o> }`,
		`DELETE WHERE { ?s ?p ?o }`,
	} {
		_, err := ParseQuery(text)
		if err == nil || !strings.Contains(err.Error(), "update operations") {
			t.Errorf("ParseQuery(%q) err = %v, want pointer to the update endpoint", text, err)
		}
	}
}

// TestParseUpdateTrailingSemicolon: a trailing ';' after the last
// operation is accepted, as in SPARQL.
func TestParseUpdateTrailingSemicolon(t *testing.T) {
	u, err := ParseUpdate(`INSERT DATA { <s> <p> <o> } ;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Ops) != 1 {
		t.Fatalf("got %d ops, want 1", len(u.Ops))
	}
}

// TestParseUpdateLatePrefixes: PREFIX between operations binds for the
// remainder of the request.
func TestParseUpdateLatePrefixes(t *testing.T) {
	u, err := ParseUpdate(`INSERT DATA { <s> <p> <o> } ;
		PREFIX ex: <http://e/>
		DELETE DATA { ex:s ex:p ex:o }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Ops) != 2 {
		t.Fatalf("got %d ops, want 2", len(u.Ops))
	}
	if u.Ops[1].Triples[0] != [3]string{"<http://e/s>", "<http://e/p>", "<http://e/o>"} {
		t.Errorf("late prefix did not resolve: %v", u.Ops[1].Triples[0])
	}
}
