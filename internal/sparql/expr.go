package sparql

// FILTER expressions: the AST, the recursive-descent expression parser,
// and SPARQL-style evaluation over decoded term surface forms. The
// dialect implements the operators docs/SPARQL.md lists — comparisons,
// && / || / !, regex(), bound() — with SPARQL's three-valued error
// handling (an evaluation error makes the enclosing constraint false,
// but true || error is still true).

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"inferray/internal/rdf"
)

// Expr is a parsed FILTER constraint. Evaluate it with Eval.
type Expr interface {
	eval(lookup func(name string) (string, bool)) (value, error)
	// String renders the expression in query-ish syntax (for logs and
	// error messages; not guaranteed to re-parse).
	String() string
}

// Eval reports whether the constraint holds under the binding lookup
// (variable name without '?' → term surface form). Per SPARQL
// semantics, an evaluation error — type mismatch, unbound variable
// outside bound() — makes the constraint false.
func Eval(e Expr, lookup func(name string) (string, bool)) bool {
	v, err := e.eval(lookup)
	if err != nil {
		return false
	}
	b, err := v.effectiveBool()
	return err == nil && b
}

// ---------------------------------------------------------------- values

// value kinds.
const (
	kindBool    = 'b'
	kindNumeric = 'n'
	kindString  = 's' // plain or xsd:string literal without a usable numeric form
	kindLiteral = 'l' // other literal (language-tagged or exotically typed)
	kindIRI     = 'i'
	kindBlank   = 'k'
)

// value is one evaluated operand.
type value struct {
	kind byte
	term string  // surface form ("" for parser-built constants)
	lex  string  // lexical form (IRI text, literal value, blank label)
	num  float64 // valid when kind == kindNumeric
	b    bool    // valid when kind == kindBool
}

// errEval marks recoverable SPARQL evaluation errors.
type evalError struct{ msg string }

func (e *evalError) Error() string { return e.msg }

func errEval(format string, args ...interface{}) error {
	return &evalError{msg: fmt.Sprintf(format, args...)}
}

// numericDatatypes are the xsd types whose literals compare numerically.
var numericDatatypes = map[string]bool{
	"http://www.w3.org/2001/XMLSchema#integer":            true,
	"http://www.w3.org/2001/XMLSchema#decimal":            true,
	"http://www.w3.org/2001/XMLSchema#float":              true,
	"http://www.w3.org/2001/XMLSchema#double":             true,
	"http://www.w3.org/2001/XMLSchema#int":                true,
	"http://www.w3.org/2001/XMLSchema#long":               true,
	"http://www.w3.org/2001/XMLSchema#short":              true,
	"http://www.w3.org/2001/XMLSchema#byte":               true,
	"http://www.w3.org/2001/XMLSchema#nonNegativeInteger": true,
	"http://www.w3.org/2001/XMLSchema#positiveInteger":    true,
	"http://www.w3.org/2001/XMLSchema#unsignedInt":        true,
	"http://www.w3.org/2001/XMLSchema#unsignedLong":       true,
}

const xsdBoolean = "http://www.w3.org/2001/XMLSchema#boolean"

// termValue classifies a term surface form into a value. A plain or
// numerically-typed literal whose lexical form parses as a number is
// numeric (the dialect's pragmatic widening, see docs/SPARQL.md).
func termValue(term string) value {
	switch {
	case strings.HasPrefix(term, "<"):
		return value{kind: kindIRI, term: term, lex: strings.TrimSuffix(strings.TrimPrefix(term, "<"), ">")}
	case strings.HasPrefix(term, "_:"):
		return value{kind: kindBlank, term: term, lex: term[2:]}
	case strings.HasPrefix(term, `"`):
		lex, ok := rdf.UnescapeLiteral(term)
		if !ok {
			return value{kind: kindLiteral, term: term, lex: term}
		}
		lang, dtype := literalTags(term)
		if dtype == xsdBoolean {
			return value{kind: kindBool, term: term, lex: lex, b: lex == "true" || lex == "1"}
		}
		if lang == "" && (dtype == "" || numericDatatypes[dtype]) {
			if f, err := strconv.ParseFloat(lex, 64); err == nil {
				return value{kind: kindNumeric, term: term, lex: lex, num: f}
			}
			if numericDatatypes[dtype] {
				return value{kind: kindLiteral, term: term, lex: lex}
			}
		}
		if lang == "" && dtype == "" {
			return value{kind: kindString, term: term, lex: lex}
		}
		return value{kind: kindLiteral, term: term, lex: lex}
	default:
		return value{kind: kindString, term: term, lex: term}
	}
}

// literalTags extracts the language tag and datatype IRI of a literal
// surface form ("" when absent).
func literalTags(term string) (lang, dtype string) {
	end := literalLexEnd(term)
	suffix := term[end:]
	switch {
	case strings.HasPrefix(suffix, "@"):
		return strings.ToLower(suffix[1:]), ""
	case strings.HasPrefix(suffix, "^^<") && strings.HasSuffix(suffix, ">"):
		return "", suffix[3 : len(suffix)-1]
	}
	return "", ""
}

// literalLexEnd returns the index just past the closing quote of a
// literal surface form (len(term) when unterminated).
func literalLexEnd(term string) int {
	for i := 1; i < len(term); i++ {
		switch term[i] {
		case '\\':
			i++
		case '"':
			return i + 1
		}
	}
	return len(term)
}

// EvalTerm evaluates a BIND expression to a term surface form under
// the binding lookup. ok is false when evaluation errs (an unbound
// variable, a type mismatch) — per SPARQL, the BIND target is then
// left unbound rather than failing the solution.
func EvalTerm(e Expr, lookup func(name string) (string, bool)) (term string, ok bool) {
	v, err := e.eval(lookup)
	if err != nil {
		return "", false
	}
	return v.surfaceTerm()
}

// surfaceTerm renders an evaluated value as an N-Triples surface form.
// Values that came from a term keep it verbatim; parser-built constants
// are rendered as literals (booleans as xsd:boolean, numbers via
// NumericLiteral, strings as plain literals).
func (v value) surfaceTerm() (string, bool) {
	if v.term != "" {
		return v.term, true
	}
	switch v.kind {
	case kindBool:
		if v.b {
			return `"true"^^<` + xsdBoolean + `>`, true
		}
		return `"false"^^<` + xsdBoolean + `>`, true
	case kindNumeric:
		return NumericLiteral(v.num), true
	case kindString:
		return rdf.EscapeLiteral(v.lex), true
	}
	return "", false
}

// NumericTerm reports the numeric interpretation of a term surface
// form, when it has one (plain or numerically-typed literal whose
// lexical form parses as a number).
func NumericTerm(term string) (float64, bool) {
	v := termValue(term)
	return v.num, v.kind == kindNumeric
}

// effectiveBool is the SPARQL effective boolean value: booleans
// themselves, numerics ≠ 0, strings non-empty; anything else errors.
func (v value) effectiveBool() (bool, error) {
	switch v.kind {
	case kindBool:
		return v.b, nil
	case kindNumeric:
		return v.num != 0, nil
	case kindString:
		return v.lex != "", nil
	}
	return false, errEval("no effective boolean value for %s", v.describe())
}

func (v value) describe() string {
	if v.term != "" {
		return v.term
	}
	return v.lex
}

// CompareTerms imposes the ORDER BY total order on term surface forms:
// unbound ("") < blank nodes < IRIs < literals; blanks and IRIs sort by
// their text; two numeric literals sort by value; all other literal
// pairs sort by lexical form. Ties break on the full surface form so
// the order is total. Returns -1, 0, or 1.
func CompareTerms(a, b string) int {
	ra, rb := termRank(a), termRank(b)
	if ra != rb {
		return cmpInt(ra, rb)
	}
	if ra == 3 { // both literals
		va, vb := termValue(a), termValue(b)
		if va.kind == kindNumeric && vb.kind == kindNumeric {
			if va.num != vb.num {
				if va.num < vb.num {
					return -1
				}
				return 1
			}
			return cmpString(a, b)
		}
		if va.lex != vb.lex {
			return cmpString(va.lex, vb.lex)
		}
	}
	return cmpString(a, b)
}

// termRank buckets terms for CompareTerms.
func termRank(term string) int {
	switch {
	case term == "":
		return 0
	case strings.HasPrefix(term, "_:"):
		return 1
	case strings.HasPrefix(term, "<"):
		return 2
	default:
		return 3
	}
}

func cmpInt(a, b int) int {
	if a < b {
		return -1
	}
	if a > b {
		return 1
	}
	return 0
}

func cmpString(a, b string) int {
	if a < b {
		return -1
	}
	if a > b {
		return 1
	}
	return 0
}

// ------------------------------------------------------------- AST nodes

// varExpr evaluates a variable binding.
type varExpr struct{ name string }

func (e *varExpr) eval(lookup func(string) (string, bool)) (value, error) {
	term, ok := lookup(e.name)
	if !ok {
		return value{}, errEval("variable ?%s is unbound", e.name)
	}
	return termValue(term), nil
}

func (e *varExpr) String() string { return "?" + e.name }

// constExpr is a literal, IRI, number, or boolean written in the query.
type constExpr struct{ v value }

func (e *constExpr) eval(func(string) (string, bool)) (value, error) { return e.v, nil }

func (e *constExpr) String() string { return e.v.describe() }

// notExpr is '!'.
type notExpr struct{ x Expr }

func (e *notExpr) eval(lookup func(string) (string, bool)) (value, error) {
	v, err := e.x.eval(lookup)
	if err != nil {
		return value{}, err
	}
	b, err := v.effectiveBool()
	if err != nil {
		return value{}, err
	}
	return value{kind: kindBool, b: !b}, nil
}

func (e *notExpr) String() string { return "!(" + e.x.String() + ")" }

// binBoolExpr is '&&' or '||' with SPARQL's three-valued error logic:
// true || error is true, false && error is false, everything else with
// an error is an error.
type binBoolExpr struct {
	or   bool
	l, r Expr
}

func (e *binBoolExpr) eval(lookup func(string) (string, bool)) (value, error) {
	lb, lerr := evalBool(e.l, lookup)
	rb, rerr := evalBool(e.r, lookup)
	if e.or {
		if lerr == nil && lb || rerr == nil && rb {
			return value{kind: kindBool, b: true}, nil
		}
		if lerr != nil {
			return value{}, lerr
		}
		if rerr != nil {
			return value{}, rerr
		}
		return value{kind: kindBool, b: false}, nil
	}
	if lerr == nil && !lb || rerr == nil && !rb {
		return value{kind: kindBool, b: false}, nil
	}
	if lerr != nil {
		return value{}, lerr
	}
	if rerr != nil {
		return value{}, rerr
	}
	return value{kind: kindBool, b: true}, nil
}

func evalBool(e Expr, lookup func(string) (string, bool)) (bool, error) {
	v, err := e.eval(lookup)
	if err != nil {
		return false, err
	}
	return v.effectiveBool()
}

func (e *binBoolExpr) String() string {
	op := " && "
	if e.or {
		op = " || "
	}
	return "(" + e.l.String() + op + e.r.String() + ")"
}

// cmpExpr is a comparison: = != < <= > >=.
type cmpExpr struct {
	op   string
	l, r Expr
}

func (e *cmpExpr) eval(lookup func(string) (string, bool)) (value, error) {
	lv, err := e.l.eval(lookup)
	if err != nil {
		return value{}, err
	}
	rv, err := e.r.eval(lookup)
	if err != nil {
		return value{}, err
	}
	var res bool
	switch e.op {
	case "=", "!=":
		eq, err := valuesEqual(lv, rv)
		if err != nil {
			return value{}, err
		}
		res = eq == (e.op == "=")
	default:
		c, err := valuesOrder(lv, rv)
		if err != nil {
			return value{}, err
		}
		switch e.op {
		case "<":
			res = c < 0
		case "<=":
			res = c <= 0
		case ">":
			res = c > 0
		case ">=":
			res = c >= 0
		}
	}
	return value{kind: kindBool, b: res}, nil
}

func (e *cmpExpr) String() string {
	return e.l.String() + " " + e.op + " " + e.r.String()
}

// valuesEqual implements '=': numeric pairs by value, booleans by
// truth, same-kind terms by lexical/term identity; comparing an IRI to
// a literal is false (distinct terms), everything else errors.
func valuesEqual(a, b value) (bool, error) {
	if a.kind == kindNumeric && b.kind == kindNumeric {
		return a.num == b.num, nil
	}
	if a.kind == kindBool && b.kind == kindBool {
		return a.b == b.b, nil
	}
	// String-ish literals compare by lexical form when both are plain;
	// otherwise fall back to full term identity (a typed literal equals
	// only the identical term).
	if a.kind == kindString && b.kind == kindString {
		return a.lex == b.lex, nil
	}
	lit := func(k byte) bool {
		return k == kindString || k == kindLiteral || k == kindNumeric || k == kindBool
	}
	if a.kind == b.kind || lit(a.kind) && lit(b.kind) {
		if a.term != "" && b.term != "" {
			return a.term == b.term, nil
		}
		return a.lex == b.lex, nil
	}
	// IRI vs literal (and similar cross-kind): different terms.
	return false, nil
}

// valuesOrder implements the ordering comparisons: numeric pairs by
// value, string/literal pairs and IRI pairs by lexical form; ordering
// across kinds is an evaluation error (the filter rejects the row).
func valuesOrder(a, b value) (int, error) {
	if a.kind == kindNumeric && b.kind == kindNumeric {
		switch {
		case a.num < b.num:
			return -1, nil
		case a.num > b.num:
			return 1, nil
		}
		return 0, nil
	}
	if a.kind == kindBool && b.kind == kindBool {
		return cmpInt(boolInt(a.b), boolInt(b.b)), nil
	}
	strish := func(k byte) bool { return k == kindString || k == kindLiteral || k == kindNumeric }
	if strish(a.kind) && strish(b.kind) {
		return cmpString(a.lex, b.lex), nil
	}
	if a.kind == kindIRI && b.kind == kindIRI {
		return cmpString(a.lex, b.lex), nil
	}
	return 0, errEval("cannot order %s against %s", a.describe(), b.describe())
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// regexExpr is regex(?var, "pattern"[, "flags"]), compiled at parse time.
type regexExpr struct {
	arg     Expr
	pattern string
	re      *regexp.Regexp
}

func (e *regexExpr) eval(lookup func(string) (string, bool)) (value, error) {
	v, err := e.arg.eval(lookup)
	if err != nil {
		return value{}, err
	}
	switch v.kind {
	case kindString, kindLiteral, kindNumeric, kindBool, kindIRI:
		return value{kind: kindBool, b: e.re.MatchString(v.lex)}, nil
	}
	return value{}, errEval("regex needs a literal or IRI, got %s", v.describe())
}

func (e *regexExpr) String() string {
	return fmt.Sprintf("regex(%s, %q)", e.arg.String(), e.pattern)
}

// boundExpr is bound(?var).
type boundExpr struct{ name string }

func (e *boundExpr) eval(lookup func(string) (string, bool)) (value, error) {
	_, ok := lookup(e.name)
	return value{kind: kindBool, b: ok}, nil
}

func (e *boundExpr) String() string { return "bound(?" + e.name + ")" }

// ------------------------------------------------------ expression parser

// parseConstraint parses the FILTER argument: a parenthesized
// expression or a bare regex()/bound() call.
func (p *parser) parseConstraint(prefixes map[string]string) (Expr, error) {
	switch {
	case p.peekTok("("):
		p.next()
		e, err := p.parseExpr(prefixes)
		if err != nil {
			return nil, err
		}
		if !p.peekTok(")") {
			return nil, p.errHere("expected ')' to close FILTER")
		}
		p.next()
		return e, nil
	case p.peekKeyword("REGEX"), p.peekKeyword("BOUND"):
		return p.parseBuiltin(prefixes)
	}
	return nil, p.errHere("FILTER needs a parenthesized expression, regex(…), or bound(…)")
}

// parseExpr parses '||' alternatives (lowest precedence).
func (p *parser) parseExpr(prefixes map[string]string) (Expr, error) {
	l, err := p.parseAnd(prefixes)
	if err != nil {
		return nil, err
	}
	for p.peekTok("||") {
		p.next()
		r, err := p.parseAnd(prefixes)
		if err != nil {
			return nil, err
		}
		l = &binBoolExpr{or: true, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseAnd(prefixes map[string]string) (Expr, error) {
	l, err := p.parseRelational(prefixes)
	if err != nil {
		return nil, err
	}
	for p.peekTok("&&") {
		p.next()
		r, err := p.parseRelational(prefixes)
		if err != nil {
			return nil, err
		}
		l = &binBoolExpr{l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseRelational(prefixes map[string]string) (Expr, error) {
	l, err := p.parseUnary(prefixes)
	if err != nil {
		return nil, err
	}
	switch op := p.peek(); op {
	case "=", "!=", "<", "<=", ">", ">=":
		p.next()
		r, err := p.parseUnary(prefixes)
		if err != nil {
			return nil, err
		}
		return &cmpExpr{op: op, l: l, r: r}, nil
	}
	return l, nil
}

func (p *parser) parseUnary(prefixes map[string]string) (Expr, error) {
	if p.peekTok("!") {
		p.next()
		x, err := p.parseUnary(prefixes)
		if err != nil {
			return nil, err
		}
		return &notExpr{x: x}, nil
	}
	return p.parsePrimary(prefixes)
}

func (p *parser) parsePrimary(prefixes map[string]string) (Expr, error) {
	tok := p.peek()
	switch {
	case tok == "":
		return nil, p.errHere("unexpected end of query in FILTER expression")
	case tok == "(":
		p.next()
		e, err := p.parseExpr(prefixes)
		if err != nil {
			return nil, err
		}
		if !p.peekTok(")") {
			return nil, p.errHere("expected ')'")
		}
		p.next()
		return e, nil
	case p.peekKeyword("REGEX"), p.peekKeyword("BOUND"):
		return p.parseBuiltin(prefixes)
	case p.peekKeyword("EXISTS"), p.peekKeyword("NOT"):
		return nil, p.errHere("EXISTS is not supported")
	case strings.HasPrefix(tok, "?"):
		if len(tok) == 1 {
			return nil, p.errHere("bare '?' is not a variable")
		}
		p.next()
		return &varExpr{name: tok[1:]}, nil
	case p.peekKeyword("TRUE"), p.peekKeyword("FALSE"):
		b := p.peekKeyword("TRUE")
		p.next()
		return &constExpr{v: value{kind: kindBool, b: b}}, nil
	case strings.HasPrefix(tok, `"`):
		p.next()
		expanded, err := expandLiteralDatatype(tok, prefixes)
		if err != nil {
			return nil, p.errPrev("%s", err)
		}
		return &constExpr{v: termValue(expanded)}, nil
	case strings.HasPrefix(tok, "<") && strings.HasSuffix(tok, ">") && len(tok) > 1:
		p.next()
		return &constExpr{v: termValue(tok)}, nil
	default:
		// Same strict numeric shape as triple-pattern terms: NaN, Inf,
		// hex floats, and underscore digits are operand errors, not
		// numeric constants.
		if numericLexical(tok) {
			if f, err := strconv.ParseFloat(tok, 64); err == nil {
				p.next()
				return &constExpr{v: value{kind: kindNumeric, lex: tok, num: f}}, nil
			}
		}
		if colon := strings.IndexByte(tok, ':'); colon >= 0 {
			if ns, ok := prefixes[tok[:colon]]; ok {
				p.next()
				return &constExpr{v: termValue("<" + ns + tok[colon+1:] + ">")}, nil
			}
		}
		// A known function name gives a better message than "cannot parse".
		for _, fn := range []string{"STR", "LANG", "DATATYPE", "ISIRI", "ISURI", "ISBLANK", "ISLITERAL", "ISNUMERIC", "LANGMATCHES", "SAMETERM", "CONTAINS", "STRSTARTS", "STRENDS"} {
			if strings.EqualFold(tok, fn) {
				return nil, p.errHere("FILTER function %s is not supported (supported: regex, bound)", strings.ToLower(fn))
			}
		}
		return nil, p.errHere("cannot parse FILTER operand")
	}
}

// parseBuiltin parses regex(?var, "pattern"[, "flags"]) and bound(?var).
func (p *parser) parseBuiltin(prefixes map[string]string) (Expr, error) {
	isRegex := p.peekKeyword("REGEX")
	p.next()
	if !p.peekTok("(") {
		return nil, p.errHere("expected '(' after builtin name")
	}
	p.next()
	if !isRegex {
		v, err := p.nextVar()
		if err != nil {
			return nil, err
		}
		if !p.peekTok(")") {
			return nil, p.errHere("expected ')' to close bound()")
		}
		p.next()
		return &boundExpr{name: v}, nil
	}
	arg, err := p.parsePrimary(prefixes)
	if err != nil {
		return nil, err
	}
	if !p.peekTok(",") {
		return nil, p.errHere("regex needs a pattern argument: regex(?var, \"pattern\")")
	}
	p.next()
	pat, err := p.nextStringLiteral()
	if err != nil {
		return nil, err
	}
	flags := ""
	if p.peekTok(",") {
		p.next()
		flags, err = p.nextStringLiteral()
		if err != nil {
			return nil, err
		}
	}
	if !p.peekTok(")") {
		return nil, p.errHere("expected ')' to close regex()")
	}
	p.next()

	goPat := pat
	if flags != "" {
		for _, f := range flags {
			switch f {
			case 'i', 's', 'm':
			default:
				return nil, p.errPrev("unsupported regex flag %q (supported: i, s, m)", string(f))
			}
		}
		goPat = "(?" + flags + ")" + pat
	}
	re, err := regexp.Compile(goPat)
	if err != nil {
		return nil, p.errPrev("invalid regex pattern: %v", err)
	}
	return &regexExpr{arg: arg, pattern: pat, re: re}, nil
}

// nextStringLiteral consumes a plain quoted string and returns its
// lexical form.
func (p *parser) nextStringLiteral() (string, error) {
	tok := p.peek()
	if !strings.HasPrefix(tok, `"`) {
		return "", p.errHere("expected a quoted string")
	}
	p.next()
	if lang, dtype := literalTags(tok); lang != "" || dtype != "" {
		return "", p.errPrev("expected a plain quoted string (no language tag or datatype)")
	}
	lex, ok := rdf.UnescapeLiteral(tok)
	if !ok {
		return "", p.errPrev("unterminated string literal")
	}
	return lex, nil
}
