package server

import (
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"inferray/internal/ratelimit"
)

// Config tunes the serving tier wrapped around the reasoner: the
// query-result cache, the per-client rate limiters, and admission
// control. The zero value disables everything optional (no cache, no
// limiting, no admission cap, no query deadline) and applies the
// default connection timeouts; DefaultConfig is what New uses.
type Config struct {
	// CacheEntries caps the query-result cache; 0 disables caching.
	CacheEntries int
	// CacheBytes caps the cache's total body bytes (0 = qcache default).
	CacheBytes int64
	// CacheEntryBytes caps one cached body; larger responses are served
	// uncached (0 = qcache default).
	CacheEntryBytes int64

	// QueryRPS grants each client this many /query requests per second
	// (token bucket, capacity QueryBurst); 0 disables query limiting.
	QueryRPS float64
	// QueryBurst is the /query bucket capacity (min 1 when limiting).
	QueryBurst int
	// UpdateRPS limits the write endpoints (/update and /triples share
	// one budget per client); 0 disables write limiting.
	UpdateRPS float64
	// UpdateBurst is the write bucket capacity (min 1 when limiting).
	UpdateBurst int
	// TrustForwarded keys limiter buckets on the first X-Forwarded-For
	// address instead of the peer address. Enable only behind a proxy
	// that overwrites the header, otherwise clients mint their own keys.
	TrustForwarded bool

	// MaxBodyBytes bounds a write request body (POST /triples and the
	// body/form of POST /update); an oversized body is refused with a
	// structured 413. 0 = 64 MiB, negative = unlimited.
	MaxBodyBytes int64

	// ReadOnly refuses the write surface (/triples, /update,
	// /checkpoint) with 403 — the follower serving mode. When LeaderURL
	// is set, refusals carry a Location header pointing the client at
	// the leader's matching endpoint.
	ReadOnly bool
	// LeaderURL is the leader base URL a read-only replica redirects
	// writers to (and, on a follower, replicates from).
	LeaderURL string

	// MaxInFlight admits at most this many concurrent /query requests;
	// excess requests are shed with 503 + Retry-After. 0 = unlimited.
	MaxInFlight int
	// QueryTimeout bounds one query evaluation; a query that exceeds it
	// is aborted and answered 504. 0 = no deadline.
	QueryTimeout time.Duration

	// IdleTimeout closes kept-alive connections with no next request
	// (0 = 2 minutes).
	IdleTimeout time.Duration
	// WriteTimeout bounds a whole request/response cycle after the
	// headers are read, which is what evicts a client that accepts its
	// response bytes arbitrarily slowly. Responses are fully buffered
	// before the first byte is written (see handleQuery), so the window
	// only needs to cover handler time plus a flush, never a slow
	// producer (0 = 5 minutes).
	WriteTimeout time.Duration
}

// DefaultConfig is the serving tier New applies: caching on with the
// qcache byte defaults, no rate limiting, no admission cap, no query
// deadline, and the default connection timeouts.
func DefaultConfig() Config {
	return Config{CacheEntries: 1024}
}

// withDefaults resolves the zero-means-default fields.
func (c Config) withDefaults() Config {
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 5 * time.Minute
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 64 << 20
	}
	return c
}

// readOnly refuses a write request on a read-only replica with 403,
// hinting the leader's matching endpoint in Location for clients that
// can re-aim their write. Reports whether the request was refused.
func (s *Server) readOnly(w http.ResponseWriter, req *http.Request) bool {
	if !s.cfg.ReadOnly {
		return false
	}
	if s.cfg.LeaderURL != "" {
		w.Header().Set("Location", strings.TrimRight(s.cfg.LeaderURL, "/")+req.URL.Path)
	}
	httpError(w, http.StatusForbidden, "read-only replica: send writes to the leader")
	return true
}

// limited wraps a handler with one rate-limit budget: a dry bucket for
// the client's key answers 429 with a Retry-After advertising when one
// token will exist again.
func (s *Server) limited(budget string, l *ratelimit.Limiter, h http.HandlerFunc) http.HandlerFunc {
	if !l.Enabled() {
		return h
	}
	limited := s.rlLimited.With(budget)
	return func(w http.ResponseWriter, req *http.Request) {
		ok, retry := l.Allow(s.clientKey(req), time.Now())
		if !ok {
			limited.Inc()
			w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(retry.Seconds()))))
			httpError(w, http.StatusTooManyRequests, "rate limit exceeded; retry after %v", retry)
			return
		}
		h(w, req)
	}
}

// admitted wraps /query with the max-in-flight semaphore: a full
// semaphore sheds immediately with 503 + Retry-After rather than
// queueing load the server has already declared itself unable to take.
func (s *Server) admitted(h http.HandlerFunc) http.HandlerFunc {
	if s.admit == nil {
		return h
	}
	return func(w http.ResponseWriter, req *http.Request) {
		select {
		case s.admit <- struct{}{}:
			defer func() { <-s.admit }()
			h(w, req)
		default:
			s.admShed.Inc()
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, "server at max in-flight queries (%d)", cap(s.admit))
		}
	}
}

// clientKey derives the rate-limit bucket key for a request: the first
// X-Forwarded-For hop when the deployment said to trust it, the peer
// address otherwise.
func (s *Server) clientKey(req *http.Request) string {
	if s.cfg.TrustForwarded {
		if xff := req.Header.Get("X-Forwarded-For"); xff != "" {
			if i := strings.IndexByte(xff, ','); i >= 0 {
				xff = xff[:i]
			}
			if ip := strings.TrimSpace(xff); ip != "" {
				return ip
			}
		}
	}
	host, _, err := net.SplitHostPort(req.RemoteAddr)
	if err != nil {
		return req.RemoteAddr
	}
	return host
}

// wantsNoCache reports a request that opted out of the cache.
func wantsNoCache(req *http.Request) bool {
	return strings.Contains(strings.ToLower(req.Header.Get("Cache-Control")), "no-cache")
}

// genHeader stamps the response with the store generation it reflects,
// the client's read-your-writes handle: a write response carries the
// post-write generation, and any later response with an equal or
// greater generation provably includes that write.
func genHeader(w http.ResponseWriter, gen uint64) {
	w.Header().Set("X-Inferray-Generation", strconv.FormatUint(gen, 10))
}
