package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"inferray"
	"inferray/internal/wal"
)

// closureLines dumps a reasoner's full closure as sorted N-Triples
// lines, the byte-comparable form replication equivalence is judged in.
func closureLines(t *testing.T, r *inferray.Reasoner) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WriteNTriples(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// newFollower builds an in-memory read-only replica of the leader at
// leaderURL and returns its server, reasoner, and tailer (not yet
// running).
func newFollower(t *testing.T, leaderURL string) (*Server, *inferray.Reasoner, *Follower) {
	t.Helper()
	fr := inferray.New(inferray.WithFragment(inferray.RDFSDefault))
	fsrv := NewWithConfig(fr, Config{ReadOnly: true, LeaderURL: leaderURL})
	f, err := fsrv.NewFollower(FollowerOptions{
		LeaderURL:   leaderURL,
		RetryMin:    10 * time.Millisecond,
		RetryMax:    100 * time.Millisecond,
		WaitSeconds: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return fsrv, fr, f
}

// waitCaughtUp polls until the follower's store generation matches the
// leader's (and the closures agree) or the deadline passes.
func waitCaughtUp(t *testing.T, leader, follower *inferray.Reasoner) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if follower.Generation() == leader.Generation() &&
			follower.Size() == leader.Size() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("follower never caught up: leader gen=%d size=%d, follower gen=%d size=%d",
		leader.Generation(), leader.Size(), follower.Generation(), follower.Size())
}

// A follower bootstraps from the leader's image, tails live writes
// (adds and deletes), and converges to the byte-identical closure at
// the same store generation; its own write surface answers 403 with a
// Location hint at the leader.
func TestReplicationLeaderFollowerConverges(t *testing.T) {
	dir := t.TempDir()
	lts, lr := newDurableTestServer(t, dir)
	defer lr.Close()

	// Seed the leader and checkpoint so the follower exercises the
	// image-bootstrap path, not just the empty-log path.
	postTriples(t, lts, "<worksFor> <http://www.w3.org/2000/01/rdf-schema#subPropertyOf> <memberOf> .\n")
	if _, err := lr.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	fsrv, fr, f := newFollower(t, lts.URL)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go f.Run(ctx)
	select {
	case <-f.Ready():
	case <-time.After(10 * time.Second):
		t.Fatal("follower never bootstrapped")
	}

	// Live churn after the bootstrap: adds and a delete.
	for i := 0; i < 5; i++ {
		postTriples(t, lts, fmt.Sprintf("<e%d> <worksFor> <d%d> .\n", i, i))
	}
	resp, err := http.Post(lts.URL+"/update", "application/sparql-update",
		strings.NewReader("DELETE DATA { <e1> <worksFor> <d1> }"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE DATA status %d", resp.StatusCode)
	}

	waitCaughtUp(t, lr, fr)
	if got, want := closureLines(t, fr), closureLines(t, lr); got != want {
		t.Fatalf("closures diverged:\nleader:\n%s\nfollower:\n%s", want, got)
	}

	// The replica refuses writes and points at the leader.
	fts := httptest.NewServer(fsrv.Handler())
	defer fts.Close()
	resp, err = http.Post(fts.URL+"/triples", "application/n-triples",
		strings.NewReader("<x> <worksFor> <y> .\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("follower POST /triples status %d, want 403", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != lts.URL+"/triples" {
		t.Fatalf("Location = %q, want %q", loc, lts.URL+"/triples")
	}

	// /stats on both sides reports the replication roles.
	var lstats, fstats struct {
		Replication *struct {
			Role     string `json:"role"`
			Follower *struct {
				Connected  bool   `json:"connected"`
				Bootstraps uint64 `json:"bootstraps"`
			} `json:"follower"`
		} `json:"replication"`
	}
	for _, probe := range []struct {
		ts   *httptest.Server
		into any
		role string
	}{{lts, &lstats, "leader"}, {fts, &fstats, "follower"}} {
		resp, err := http.Get(probe.ts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(probe.into); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if lstats.Replication == nil || lstats.Replication.Role != "leader" {
		t.Fatalf("leader /stats replication = %+v", lstats.Replication)
	}
	if fstats.Replication == nil || fstats.Replication.Role != "follower" ||
		fstats.Replication.Follower == nil || fstats.Replication.Follower.Bootstraps == 0 {
		t.Fatalf("follower /stats replication = %+v", fstats.Replication)
	}
}

// A follower whose position is pruned by checkpoints while it is away
// gets 410 Gone on reconnect, re-bootstraps from the new image, and
// still converges.
func TestReplicationTruncationForcesRebootstrap(t *testing.T) {
	dir := t.TempDir()
	lts, lr := newDurableTestServer(t, dir)
	defer lr.Close()
	postTriples(t, lts, "<a> <worksFor> <b> .\n")

	_, fr, f := newFollower(t, lts.URL)
	ctx1, cancel1 := context.WithCancel(context.Background())
	go f.Run(ctx1)
	select {
	case <-f.Ready():
	case <-time.After(10 * time.Second):
		t.Fatal("follower never bootstrapped")
	}
	waitCaughtUp(t, lr, fr)
	cancel1() // follower goes offline

	// While the follower is away, the leader appends and checkpoints:
	// its log generation rotates past the follower's position, so the
	// missed records now live only inside the image.
	postTriples(t, lts, "<c> <worksFor> <d> .\n")
	if _, err := lr.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	postTriples(t, lts, "<e> <worksFor> <f> .\n")
	if _, err := lr.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	go f.Run(ctx2)
	waitCaughtUp(t, lr, fr)
	if got, want := closureLines(t, fr), closureLines(t, lr); got != want {
		t.Fatalf("closures diverged after re-bootstrap:\nleader:\n%s\nfollower:\n%s", want, got)
	}
	st := f.Stats()
	if st.Truncations == 0 {
		t.Fatalf("expected a 410 truncation, stats = %+v", st)
	}
	if st.Bootstraps < 2 {
		t.Fatalf("expected a re-bootstrap, stats = %+v", st)
	}
}

// An oversized write body answers a structured 413 naming the limit on
// both /triples and /update.
func TestMaxBodyBytes413(t *testing.T) {
	_, r := newTestServer(t)
	srv := NewWithConfig(r, Config{MaxBodyBytes: 64})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	big := strings.Repeat("<aaaaaaaaaaaa> <worksFor> <bbbbbbbbbbbb> .\n", 4)
	for _, ep := range []struct{ path, ctype string }{
		{"/triples", "application/n-triples"},
		{"/update", "application/sparql-update"},
		{"/update", "application/x-www-form-urlencoded"},
	} {
		body := big
		if ep.ctype == "application/x-www-form-urlencoded" {
			body = "update=" + big
		}
		resp, err := http.Post(ts.URL+ep.path, ep.ctype, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var payload struct {
			Error      string `json:"error"`
			LimitBytes int64  `json:"limit_bytes"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s (%s): status %d, want 413", ep.path, ep.ctype, resp.StatusCode)
		}
		if payload.LimitBytes != 64 || payload.Error == "" {
			t.Fatalf("%s (%s): 413 body = %+v", ep.path, ep.ctype, payload)
		}
	}

	// Under the limit still works.
	resp, err := http.Post(ts.URL+"/triples", "application/n-triples",
		strings.NewReader("<s> <worksFor> <o> .\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small body status %d", resp.StatusCode)
	}
}

// A record appended mid-poll must be flushed to a tailing consumer
// promptly — not buffered until the long-poll window closes. (The
// instrumentation wrapper has to forward Flush for this to hold; a
// buffered stream turns replication lag into the full wait window.)
func TestWALLongPollFlushesMidWindow(t *testing.T) {
	dir := t.TempDir()
	lts, lr := newDurableTestServer(t, dir)
	defer lr.Close()
	postTriples(t, lts, "<a> <worksFor> <b> .\n")

	tail, err := lr.WALTail()
	if err != nil {
		t.Fatal(err)
	}
	// Tail from the current end with a poll window far longer than the
	// acceptable delivery latency.
	go func() {
		time.Sleep(200 * time.Millisecond)
		resp, err := http.Post(lts.URL+"/triples", "application/n-triples",
			strings.NewReader("<c> <worksFor> <d> .\n"))
		if err == nil {
			resp.Body.Close()
		}
	}()
	start := time.Now()
	resp, err := http.Get(fmt.Sprintf("%s/wal?from=%d&records=%d&wait=30",
		lts.URL, tail.Generation, tail.Records))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	fr := wal.NewFrameReader(resp.Body)
	if _, _, err := fr.Next(); err != nil {
		t.Fatalf("reading mid-poll frame: %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("frame arrived after %v — long-poll response is buffering instead of flushing", d)
	}
}
