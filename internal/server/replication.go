package server

// Leader-side replication: a durable reasoner exposes its write-ahead
// log as a resumable HTTP record stream plus the newest snapshot image
// for bootstrap. Followers (see follower.go) download the image, then
// tail GET /wal and re-apply each shipped record through the same
// incremental-materialization path the leader ran — derived state is
// re-computed on each replica, never shipped.
//
//	GET /wal?from=<gen>&records=<n>[&wait=<sec>]
//	    Stream committed WAL records at and after position (gen, n),
//	    framed exactly like on-disk version-2 records (wal.EncodeFrame);
//	    long-polls up to wait seconds (default 20) for new records
//	    before closing on a frame boundary. Response headers announce
//	    the resolved start position (X-Inferray-WAL-Generation /
//	    -Records: a fully caught-up consumer is transparently advanced
//	    past a checkpoint rotation) and the leader tail
//	    (X-Inferray-WAL-Tail-Generation / -Tail-Records) for lag
//	    accounting. One response serves one generation; re-request to
//	    cross into the next. A pruned position answers 410 Gone — the
//	    consumer must re-bootstrap from /snapshot/latest.
//	GET /snapshot/latest
//	    The current generation's snapshot image (the exact on-disk
//	    file, CRC and all). 404 with the generation header when the
//	    directory has no image yet (fresh leader before its first
//	    checkpoint): bootstrap empty and stream from (gen, 0).

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"inferray"
	"inferray/internal/metrics"
	"inferray/internal/wal"
)

// Replication stream header names. The WAL-prefixed generation headers
// are checkpoint generations (file pairing); they are distinct from
// X-Inferray-Generation, the logical store generation.
const (
	hdrWALGen         = "X-Inferray-WAL-Generation"
	hdrWALRecords     = "X-Inferray-WAL-Records"
	hdrWALTailGen     = "X-Inferray-WAL-Tail-Generation"
	hdrWALTailRecords = "X-Inferray-WAL-Tail-Records"

	// walContentType is the GET /wal response body: a concatenation of
	// version-2 WAL record frames.
	walContentType = "application/x-inferray-wal"
)

// replPollInterval is how often the long-polling /wal handler re-checks
// the tail for growth.
const replPollInterval = 25 * time.Millisecond

// replMetrics is the leader-side replication instrument set, registered
// on the server's registry when the reasoner is durable.
type replMetrics struct {
	shippedRecords *metrics.Counter
	shippedBytes   *metrics.Counter
	walRequests    *metrics.Counter
	truncations    *metrics.Counter
	snapshotShips  *metrics.Counter
	snapshotBytes  *metrics.Counter
}

func newReplMetrics(reg *metrics.Registry) *replMetrics {
	return &replMetrics{
		shippedRecords: reg.Counter("inferray_replication_shipped_records_total",
			"WAL records shipped to replication consumers via GET /wal."),
		shippedBytes: reg.Counter("inferray_replication_shipped_bytes_total",
			"WAL frame bytes shipped to replication consumers."),
		walRequests: reg.Counter("inferray_replication_wal_requests_total",
			"GET /wal requests served (any outcome)."),
		truncations: reg.Counter("inferray_replication_truncations_total",
			"GET /wal requests answered 410 Gone (position pruned by a checkpoint)."),
		snapshotShips: reg.Counter("inferray_replication_snapshot_ships_total",
			"Snapshot images shipped via GET /snapshot/latest."),
		snapshotBytes: reg.Counter("inferray_replication_snapshot_shipped_bytes_total",
			"Snapshot image bytes shipped via GET /snapshot/latest."),
	}
}

// setPosHeaders stamps a position pair onto the response.
func setPosHeaders(w http.ResponseWriter, genHdr, recHdr string, pos inferray.WALPosition) {
	w.Header().Set(genHdr, strconv.FormatUint(pos.Generation, 10))
	w.Header().Set(recHdr, strconv.Itoa(pos.Records))
}

func (s *Server) handleWAL(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	s.repl.walRequests.Inc()
	q := req.URL.Query()
	var pos inferray.WALPosition
	if v := q.Get("from"); v != "" {
		g, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "from must be a generation number, got %q", v)
			return
		}
		pos.Generation = g
	}
	if v := q.Get("records"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "records must be a non-negative integer, got %q", v)
			return
		}
		pos.Records = n
	}
	wait := 20 * time.Second
	if v := q.Get("wait"); v != "" {
		sec, err := strconv.Atoi(v)
		if err != nil || sec < 0 || sec > 60 {
			httpError(w, http.StatusBadRequest, "wait must be 0..60 seconds, got %q", v)
			return
		}
		wait = time.Duration(sec) * time.Second
	}
	deadline := time.Now().Add(wait)

	st, err := s.r.StreamWAL(pos)
	if err != nil {
		if errors.Is(err, inferray.ErrWALTruncated) {
			// The records between pos and the tail live only inside the
			// snapshot image now; tell the consumer to re-bootstrap.
			s.repl.truncations.Inc()
			tail, _ := s.r.WALTail()
			setPosHeaders(w, hdrWALTailGen, hdrWALTailRecords, tail)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusGone)
			writeJSONBody(w, map[string]any{
				"error":      "position truncated by a checkpoint; re-bootstrap from /snapshot/latest",
				"generation": tail.Generation,
				"records":    tail.Records,
			})
			return
		}
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}

	// Headers go out before the first frame, so one response serves one
	// generation: if a checkpoint rotates the log mid-poll, the response
	// ends on a frame boundary and the next request re-resolves (and
	// re-advertises) the new generation.
	start := st.Pos()
	tail, _ := s.r.WALTail()
	setPosHeaders(w, hdrWALGen, hdrWALRecords, start)
	setPosHeaders(w, hdrWALTailGen, hdrWALTailRecords, tail)
	w.Header().Set("Content-Type", walContentType)
	flusher, _ := w.(http.Flusher)

	for {
		n, err := s.shipFrames(w, st)
		pos = st.Pos()
		st.Close()
		if err != nil {
			// Client gone or the stream hit unreadable bytes; either way
			// the response is already committed — just stop.
			return
		}
		if n > 0 && flusher != nil {
			flusher.Flush()
		}
		if req.Context().Err() != nil || !s.waitForTail(req.Context(), pos, deadline) {
			return
		}
		next, err := s.r.StreamWAL(pos)
		if err != nil {
			// Truncated or rotated mid-poll: end the response; the next
			// request resolves against the new state with fresh headers.
			return
		}
		if next.Pos().Generation != start.Generation {
			next.Close()
			return
		}
		st = next
	}
}

// shipFrames writes every record the stream holds as a wire frame,
// returning how many were shipped.
func (s *Server) shipFrames(w io.Writer, st *inferray.WALStream) (int, error) {
	n := 0
	for {
		kind, payload, err := st.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		frame := wal.EncodeFrame(kind, payload)
		if _, err := w.Write(frame); err != nil {
			return n, err
		}
		n++
		s.repl.shippedRecords.Inc()
		s.repl.shippedBytes.Add(uint64(len(frame)))
	}
}

// waitForTail polls until the leader tail moves past pos, the deadline
// passes, or the client goes away. Reports whether there is anything
// new to ship.
func (s *Server) waitForTail(ctx interface{ Done() <-chan struct{} }, pos inferray.WALPosition, deadline time.Time) bool {
	for {
		tail, err := s.r.WALTail()
		if err != nil {
			return false
		}
		if tail != pos {
			return true
		}
		if !time.Now().Before(deadline) {
			return false
		}
		select {
		case <-ctx.Done():
			return false
		case <-time.After(replPollInterval):
		}
	}
}

func (s *Server) handleSnapshotLatest(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	// A checkpoint can prune the image between the path lookup and the
	// open; re-resolve once before giving up.
	for attempt := 0; ; attempt++ {
		path, gen, ok, err := s.r.SnapshotFile()
		if err != nil {
			httpError(w, http.StatusConflict, "%v", err)
			return
		}
		w.Header().Set(hdrWALGen, strconv.FormatUint(gen, 10))
		if !ok {
			httpError(w, http.StatusNotFound,
				"no snapshot image yet; bootstrap empty and stream from generation %d", gen)
			return
		}
		f, err := os.Open(path)
		if err != nil {
			if os.IsNotExist(err) && attempt == 0 {
				continue
			}
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.FormatInt(fi.Size(), 10))
		n, _ := io.Copy(w, f)
		f.Close()
		s.repl.snapshotShips.Inc()
		s.repl.snapshotBytes.Add(uint64(n))
		return
	}
}

// writeJSONBody encodes v after the status line is already written
// (writeJSON would try to set headers).
func writeJSONBody(w io.Writer, v any) {
	enc, err := json.Marshal(v)
	if err == nil {
		enc = append(enc, '\n')
		_, _ = w.Write(enc)
	}
}
