package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"inferray"
)

// scrape fetches /metrics and returns the exposition body.
func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestMetricsEndpointFamilies(t *testing.T) {
	ts, _ := newTestServer(t)
	// Generate traffic so the families have samples.
	getResults(t, ts, `SELECT ?who WHERE { ?who <memberOf> <DeptCS> }`)
	body := scrape(t, ts)

	for _, want := range []string{
		// Server-owned HTTP families.
		"# TYPE inferray_http_requests_total counter",
		`inferray_http_requests_total{endpoint="query",code="200"} 1`,
		"# TYPE inferray_http_request_duration_seconds histogram",
		`inferray_http_request_duration_seconds_bucket{endpoint="query",le="+Inf"} 1`,
		"# TYPE inferray_http_in_flight_requests gauge",
		// Reasoner-owned families, appended by Reasoner.WriteMetrics.
		"# TYPE inferray_reasoner_materializations_total counter",
		"inferray_reasoner_materializations_total 1",
		"# TYPE inferray_query_solves_total counter",
		`inferray_query_solves_total{engine="planned"} 1`,
		"# TYPE inferray_query_evaluations_total counter",
		"inferray_query_evaluations_total 1",
		"# TYPE inferray_wal_appends_total counter",
		"# TYPE inferray_build_info gauge",
		`fragment="rdfs-plus"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", body)
	}
}

func TestMetricsEndpointCountsErrorsByCode(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/query?query=" + url.QueryEscape("SELECT nonsense"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	body := scrape(t, ts)
	if want := `inferray_http_requests_total{endpoint="query",code="400"} 1`; !strings.Contains(body, want) {
		t.Fatalf("exposition missing %q:\n%s", want, body)
	}
}

func TestReadyzGatesOnSetReady(t *testing.T) {
	r := inferray.New()
	srv := New(r)
	srv.SetReady(false)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	check := func(path string, want int) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s status = %d, want %d", path, resp.StatusCode, want)
		}
	}
	check("/readyz", http.StatusServiceUnavailable)
	check("/healthz", http.StatusOK) // liveness is independent of readiness
	srv.SetReady(true)
	check("/readyz", http.StatusOK)
}

func TestRequestIDEchoedAndMinted(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-ID"); id == "" {
		t.Fatal("no minted X-Request-ID on response")
	}

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "trace-me-42")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-ID"); id != "trace-me-42" {
		t.Fatalf("X-Request-ID = %q, want the client's own", id)
	}
}

func TestPprofOptIn(t *testing.T) {
	r := inferray.New()
	srv := New(r)
	off := httptest.NewServer(srv.Handler())
	defer off.Close()
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof served without opt-in: status %d", resp.StatusCode)
	}

	srv.EnablePprof()
	on := httptest.NewServer(srv.Handler())
	defer on.Close()
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index: status %d body %.80q", resp.StatusCode, body)
	}
}

// TestConcurrentScrapesWhileServing hammers queries, deltas, and
// /metrics scrapes concurrently; run under -race it proves every
// instrument update is synchronized with exposition.
func TestConcurrentScrapesWhileServing(t *testing.T) {
	ts, _ := newTestServer(t)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				getResults(t, ts, `SELECT ?who WHERE { ?who <memberOf> <DeptCS> }`)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			nt := fmt.Sprintf("<scraped%d> <worksFor> <DeptCS> .\n", i)
			resp, err := http.Post(ts.URL+"/triples", "application/n-triples", strings.NewReader(nt))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
		}
	}()
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				scrape(t, ts)
			}
		}()
	}
	wg.Wait()

	// The counter increments after the handler returns, so the last
	// request's sample can trail its response by an instant: poll.
	want := `inferray_http_requests_total{endpoint="query",code="200"} 100`
	var body string
	for i := 0; i < 50; i++ {
		body = scrape(t, ts)
		if strings.Contains(body, want) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("exposition missing %q after hammer:\n%s", want, body)
}
