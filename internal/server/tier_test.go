package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"inferray"
	"inferray/internal/datagen"
	"inferray/internal/rdf"
)

// tierGet issues one GET /query and returns status, body, and the
// cache/generation headers.
func tierGet(t *testing.T, ts *httptest.Server, query string, noCache bool) (int, []byte, string, uint64) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/query?query="+url.QueryEscape(query), nil)
	if err != nil {
		t.Fatal(err)
	}
	if noCache {
		req.Header.Set("Cache-Control", "no-cache")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := strconv.ParseUint(resp.Header.Get("X-Inferray-Generation"), 10, 64)
	return resp.StatusCode, body, resp.Header.Get("X-Inferray-Cache"), gen
}

// postUpdate issues one SPARQL UPDATE and returns the response's store
// generation.
func postUpdate(t *testing.T, ts *httptest.Server, text string) uint64 {
	t.Helper()
	resp, err := http.PostForm(ts.URL+"/update", url.Values{"update": {text}})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("update status %d: %s", resp.StatusCode, body)
	}
	io.Copy(io.Discard, resp.Body)
	gen, _ := strconv.ParseUint(resp.Header.Get("X-Inferray-Generation"), 10, 64)
	return gen
}

// tripleBlock renders triples as the body of an INSERT/DELETE DATA op.
func tripleBlock(batch []rdf.Triple) string {
	var b strings.Builder
	for _, tr := range batch {
		fmt.Fprintf(&b, "%s %s %s .\n", tr.S, tr.P, tr.O)
	}
	return b.String()
}

// TestCacheEquivalenceInterleaved is the headline correctness proof for
// the query cache: under randomized interleavings of queries, INSERT
// DATA, and DELETE DATA — across every rule fragment with the hierarchy
// encoding on and off — every cached GET /query response must be
// byte-identical to a cold (Cache-Control: no-cache) evaluation at the
// same generation. A cached body that differs from the cold body is a
// stale hit; the test demands zero of them and a hit ratio above zero,
// which is also what the CI bench-smoke gate asserts by running it.
func TestCacheEquivalenceInterleaved(t *testing.T) {
	fragments := []inferray.Fragment{
		inferray.RhoDF, inferray.RDFSDefault, inferray.RDFSFull,
		inferray.RDFSPlus, inferray.RDFSPlusFull,
	}
	queries := []string{
		`SELECT ?s ?c WHERE { ?s ` + rdf.RDFType + ` ?c }`,
		`SELECT ?a ?b WHERE { ?a ` + rdf.RDFSSubClassOf + ` ?b }`,
		`SELECT (COUNT(*) AS ?n) WHERE { ?s ` + rdf.RDFType + ` ?c }`,
		`ASK { ?a ` + rdf.RDFSSubPropertyOf + ` ?b }`,
	}
	totalHits, staleHits := 0, 0
	for _, fragment := range fragments {
		for _, encoded := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/encoding=%v", fragment, encoded), func(t *testing.T) {
				for seed := int64(0); seed < 2; seed++ {
					rng := rand.New(rand.NewSource(seed*131 + 11))
					pool := datagen.RandomOntology(rng, datagen.RandomConfig{
						Classes:   4 + rng.Intn(5),
						Props:     3 + rng.Intn(4),
						Instances: 5 + rng.Intn(6),
						Schema:    8 + rng.Intn(10),
						Data:      10 + rng.Intn(20),
						Plus:      fragment.UsesSameAs(),
					})
					r := inferray.New(
						inferray.WithFragment(fragment),
						inferray.WithHierarchyEncoding(encoded),
					)
					cut := len(pool) * 2 / 3
					r.AddTriples(pool[:cut])
					if _, err := r.Materialize(); err != nil {
						t.Fatal(err)
					}
					asserted := append([]rdf.Triple(nil), pool[:cut]...)
					rest := pool[cut:]
					ts := httptest.NewServer(New(r).Handler())

					check := func(op int) {
						for _, q := range queries {
							// First request primes or hits the cache; the
							// no-cache request is always a cold evaluation.
							code1, body1, state, gen1 := tierGet(t, ts, q, false)
							code2, body2, _, gen2 := tierGet(t, ts, q, true)
							if code1 != http.StatusOK || code2 != http.StatusOK {
								t.Fatalf("op %d: status %d/%d for %q", op, code1, code2, q)
							}
							if gen1 != gen2 {
								t.Fatalf("op %d: generation moved %d -> %d with no write (query %q)", op, gen1, gen2, q)
							}
							if state == "hit" {
								totalHits++
								if string(body1) != string(body2) {
									staleHits++
									t.Errorf("op %d seed %d: STALE HIT at generation %d for %q:\ncached: %s\ncold:   %s",
										op, seed, gen1, q, body1, body2)
								}
							} else if string(body1) != string(body2) {
								t.Errorf("op %d seed %d: miss body diverged from cold body for %q", op, seed, q)
							}
						}
					}

					check(-1)
					// Prime once more so the next round of queries can hit.
					check(-1)
					for op := 0; op < 6; op++ {
						var wroteGen uint64
						if len(rest) > 0 && rng.Intn(2) == 0 {
							n := 1 + rng.Intn(4)
							if n > len(rest) {
								n = len(rest)
							}
							wroteGen = postUpdate(t, ts, "INSERT DATA {\n"+tripleBlock(rest[:n])+"}")
							asserted = append(asserted, rest[:n]...)
							rest = rest[n:]
						} else if len(asserted) > 0 {
							n := 1 + rng.Intn(3)
							batch := make([]rdf.Triple, 0, n)
							for i := 0; i < n; i++ {
								batch = append(batch, asserted[rng.Intn(len(asserted))])
							}
							wroteGen = postUpdate(t, ts, "DELETE DATA {\n"+tripleBlock(batch)+"}")
						}
						// Read-your-writes: responses after the write carry a
						// generation at least as new as the write's.
						_, _, _, gen := tierGet(t, ts, queries[0], false)
						if gen < wroteGen {
							t.Fatalf("op %d: response generation %d older than the preceding write's %d", op, gen, wroteGen)
						}
						check(op)
						check(op) // second pass over the same generation must produce hits
						if t.Failed() {
							ts.Close()
							return
						}
					}
					ts.Close()
				}
			})
		}
	}
	if staleHits != 0 {
		t.Fatalf("stale hits: %d", staleHits)
	}
	if totalHits == 0 {
		t.Fatal("cache hit ratio is zero: the equivalence run never exercised a cached response")
	}
	t.Logf("cache equivalence: %d hits, %d stale", totalHits, staleHits)
}

// TestConcurrentCachedQueryUpdate race-hammers the serving tier:
// concurrent cached readers against UPDATE writers against a mid-stream
// checkpoint on a durable reasoner. Each client asserts read-your-writes
// through the generation header — a response observed after a write
// completes must carry a generation at least the write's — and that its
// own sequence of generations never moves backwards (a backwards step
// would be a stale cache hit).
func TestConcurrentCachedQueryUpdate(t *testing.T) {
	dir := t.TempDir()
	r, err := inferray.Open(
		inferray.WithFragment(inferray.RDFSPlus),
		inferray.WithDurability(dir, inferray.DurabilityOptions{Sync: "none"}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	base := `
<subOrgOf> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://www.w3.org/2002/07/owl#TransitiveProperty> .
<worksFor> <http://www.w3.org/2000/01/rdf-schema#subPropertyOf> <memberOf> .
<DeptCS> <subOrgOf> <Univ0> .
<alice> <worksFor> <DeptCS> .
`
	if err := r.LoadNTriples(strings.NewReader(base)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Materialize(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(r).Handler())
	defer ts.Close()

	const (
		readers = 6
		writers = 2
		rounds  = 25
	)
	queries := []string{
		`SELECT ?who WHERE { ?who <memberOf> <DeptCS> }`,
		`SELECT ?d ?u WHERE { ?d <subOrgOf> ?u }`,
		`ASK { <alice> <memberOf> <DeptCS> }`,
	}
	var wg sync.WaitGroup
	errc := make(chan error, readers+writers+1)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lastGen := uint64(0)
			for i := 0; i < rounds; i++ {
				q := queries[(g+i)%len(queries)]
				req, _ := http.NewRequest(http.MethodGet, ts.URL+"/query?query="+url.QueryEscape(q), nil)
				if i%5 == 4 {
					req.Header.Set("Cache-Control", "no-cache")
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					errc <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("reader %d: status %d", g, resp.StatusCode)
					return
				}
				gen, _ := strconv.ParseUint(resp.Header.Get("X-Inferray-Generation"), 10, 64)
				if gen < lastGen {
					errc <- fmt.Errorf("reader %d: generation went backwards %d -> %d (stale cache hit)", g, lastGen, gen)
					return
				}
				lastGen = gen
			}
		}(g)
	}
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				triple := fmt.Sprintf("<w%d-%d> <worksFor> <DeptCS>", g, i)
				resp, err := http.PostForm(ts.URL+"/update",
					url.Values{"update": {"INSERT DATA { " + triple + " . }"}})
				if err != nil {
					errc <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				wroteGen, _ := strconv.ParseUint(resp.Header.Get("X-Inferray-Generation"), 10, 64)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("writer %d: status %d", g, resp.StatusCode)
					return
				}
				// Read-your-writes: a query issued after the write completed
				// must answer at a generation >= the write's, hit or miss.
				code, _, _, gen := tierGet(t, ts, queries[g%len(queries)], false)
				if code != http.StatusOK {
					errc <- fmt.Errorf("writer %d: post-write query status %d", g, code)
					return
				}
				if gen < wroteGen {
					errc <- fmt.Errorf("writer %d: post-write read at generation %d < write's %d (stale cache hit)", g, gen, wroteGen)
					return
				}
			}
		}(g)
	}
	// Mid-stream checkpoints while readers and writers are in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			time.Sleep(10 * time.Millisecond)
			resp, err := http.Post(ts.URL+"/checkpoint", "", nil)
			if err != nil {
				errc <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errc <- fmt.Errorf("checkpoint: status %d", resp.StatusCode)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestCacheHeadersAndInvalidation covers the cache lifecycle a client
// sees: miss then hit with identical bytes, bypass on Cache-Control:
// no-cache and on POST, and a write moving the generation so the next
// read misses and reflects the new data.
func TestCacheHeadersAndInvalidation(t *testing.T) {
	ts, _ := newTestServer(t)
	q := `SELECT ?who WHERE { ?who <memberOf> <DeptCS> }`

	code, body1, state, gen1 := tierGet(t, ts, q, false)
	if code != http.StatusOK || state != "miss" {
		t.Fatalf("first read: status %d, cache %q", code, state)
	}
	_, body2, state, gen2 := tierGet(t, ts, q, false)
	if state != "hit" {
		t.Fatalf("second read: cache %q, want hit", state)
	}
	if string(body1) != string(body2) || gen1 != gen2 {
		t.Fatalf("hit differs from miss: %q vs %q (gen %d vs %d)", body1, body2, gen1, gen2)
	}
	if _, _, state, _ = tierGet(t, ts, q, true); state != "bypass" {
		t.Fatalf("no-cache read: cache %q, want bypass", state)
	}
	resp, err := http.PostForm(ts.URL+"/query", url.Values{"query": {q}})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("X-Inferray-Cache"); got != "bypass" {
		t.Fatalf("POST query: cache %q, want bypass", got)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	wroteGen := postUpdate(t, ts, `INSERT DATA { <bob> <worksFor> <DeptCS> . }`)
	if wroteGen <= gen1 {
		t.Fatalf("write generation %d did not advance past %d", wroteGen, gen1)
	}
	_, body3, state, gen3 := tierGet(t, ts, q, false)
	if state != "miss" {
		t.Fatalf("post-write read: cache %q, want miss (generation changed)", state)
	}
	if gen3 < wroteGen {
		t.Fatalf("post-write read at generation %d < write's %d", gen3, wroteGen)
	}
	if !strings.Contains(string(body3), "bob") {
		t.Fatalf("post-write read does not include the write: %s", body3)
	}
}

// TestRateLimit429 exercises both budgets: a client that exhausts its
// /query bucket gets 429 + Retry-After while the write budget stays
// open, and refilling grants again.
func TestRateLimit429(t *testing.T) {
	r := inferray.New(inferray.WithFragment(inferray.RDFSPlus))
	if err := r.LoadNTriples(strings.NewReader("<a> <p> <b> .\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Materialize(); err != nil {
		t.Fatal(err)
	}
	s := NewWithConfig(r, Config{
		CacheEntries: 16,
		QueryRPS:     0.5, QueryBurst: 2,
		UpdateRPS: 100, UpdateBurst: 100,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	q := `ASK { <a> <p> <b> }`
	for i := 0; i < 2; i++ {
		if code, _, _, _ := tierGet(t, ts, q, false); code != http.StatusOK {
			t.Fatalf("request %d inside burst: status %d", i, code)
		}
	}
	resp, err := http.Get(ts.URL + "/query?query=" + url.QueryEscape(q))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over burst: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want a positive whole-second value", ra)
	}
	// The write budget is independent: an update still goes through.
	postUpdate(t, ts, `INSERT DATA { <c> <p> <d> . }`)

	st := serverStats(t, ts)
	if st.Ratelimit == nil || st.Ratelimit.Query.Limited == 0 {
		t.Fatalf("stats ratelimit block = %+v, want limited > 0", st.Ratelimit)
	}
}

// TestRateLimitForwardedKeying checks X-Forwarded-For is only honored
// behind the opt-in trust flag: trusted, two forwarded addresses get
// separate buckets; untrusted, the header is ignored and both spend
// from the peer-address bucket.
func TestRateLimitForwardedKeying(t *testing.T) {
	newLimited := func(trust bool) *httptest.Server {
		r := inferray.New()
		if err := r.LoadNTriples(strings.NewReader("<a> <p> <b> .\n")); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Materialize(); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(NewWithConfig(r, Config{
			QueryRPS: 0.001, QueryBurst: 1, TrustForwarded: trust,
		}).Handler())
		t.Cleanup(ts.Close)
		return ts
	}
	get := func(ts *httptest.Server, xff string) int {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/query?query="+url.QueryEscape(`ASK { <a> <p> <b> }`), nil)
		if xff != "" {
			req.Header.Set("X-Forwarded-For", xff)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	trusted := newLimited(true)
	if code := get(trusted, "10.0.0.1"); code != http.StatusOK {
		t.Fatalf("first client: %d", code)
	}
	if code := get(trusted, "10.0.0.2, 192.168.0.1"); code != http.StatusOK {
		t.Fatalf("second client (distinct XFF) should have its own bucket: %d", code)
	}
	if code := get(trusted, "10.0.0.1"); code != http.StatusTooManyRequests {
		t.Fatalf("first client's second request: %d, want 429", code)
	}

	untrusted := newLimited(false)
	if code := get(untrusted, "10.0.0.1"); code != http.StatusOK {
		t.Fatalf("untrusted first: %d", code)
	}
	if code := get(untrusted, "10.0.0.2"); code != http.StatusTooManyRequests {
		t.Fatalf("untrusted must ignore XFF and share the peer bucket: %d, want 429", code)
	}
}

// TestAdmission503 drives the max-in-flight semaphore directly: with
// one slot held by a parked request, the next is shed with 503 +
// Retry-After, and releasing the slot admits again.
func TestAdmission503(t *testing.T) {
	r := inferray.New()
	s := NewWithConfig(r, Config{MaxInFlight: 1})
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	h := s.admitted(func(w http.ResponseWriter, req *http.Request) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
	})

	go func() {
		h(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/query", nil))
	}()
	<-started

	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodGet, "/query", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d with the semaphore full, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	close(release)
	// The parked request drains its slot; eventually admission resumes.
	deadline := time.Now().Add(2 * time.Second)
	for {
		rec := httptest.NewRecorder()
		h(rec, httptest.NewRequest(http.MethodGet, "/query", nil))
		if rec.Code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("semaphore never freed: status %d", rec.Code)
		}
		time.Sleep(time.Millisecond)
	}
	if s.admShed.Value() == 0 {
		t.Fatal("shed counter did not move")
	}
}

// TestQueryTimeout504 checks the per-request deadline: a server with a
// nanosecond budget answers 504 and counts the abort.
func TestQueryTimeout504(t *testing.T) {
	r := inferray.New()
	if err := r.LoadNTriples(strings.NewReader("<a> <p> <b> .\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Materialize(); err != nil {
		t.Fatal(err)
	}
	s := NewWithConfig(r, Config{QueryTimeout: time.Nanosecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/query?query=" + url.QueryEscape(`SELECT ?s WHERE { ?s <p> ?o }`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	st := serverStats(t, ts)
	if st.Admission == nil || st.Admission.DeadlineExceeded == 0 {
		t.Fatalf("stats admission block = %+v, want deadline_exceeded > 0", st.Admission)
	}
}

// serverStats fetches and decodes /stats.
func serverStats(t *testing.T, ts *httptest.Server) statsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStatsAndMetricsServingTier asserts the tier surfaces in /stats
// (generation, cache block) and /metrics (inferray_cache_* families).
func TestStatsAndMetricsServingTier(t *testing.T) {
	ts, _ := newTestServer(t)
	q := `ASK { <alice> <memberOf> <DeptCS> }`
	tierGet(t, ts, q, false)
	tierGet(t, ts, q, false)

	st := serverStats(t, ts)
	if st.Cache == nil {
		t.Fatal("/stats has no cache block with the cache enabled")
	}
	if st.Cache.Hits == 0 || st.Cache.Entries == 0 {
		t.Fatalf("cache block = %+v, want hits and entries > 0", st.Cache)
	}
	if st.Generation == 0 {
		t.Fatal("/stats generation is zero after a materialization")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, family := range []string{"inferray_cache_hits_total", "inferray_cache_entries", "inferray_ratelimit_limited_total", "inferray_admission_shed_total"} {
		if !strings.Contains(string(body), family) {
			t.Errorf("/metrics missing %s", family)
		}
	}
}

// TestSlowReaderCannotHoldConnection is the regression test for the
// connection-timeout satellite: a client that sends a request and then
// stops reading (and never sends another) must have its connection
// closed by the server's WriteTimeout/IdleTimeout, not hold it forever.
func TestSlowReaderCannotHoldConnection(t *testing.T) {
	r := inferray.New()
	// Enough rows that the response body (~1.5 MB) overflows kernel
	// socket buffers, so an unread response leaves the server's write
	// blocked until WriteTimeout trips.
	var doc strings.Builder
	for i := 0; i < 6000; i++ {
		fmt.Fprintf(&doc, "<s%d> <p> \"%s-%d\" .\n", i, strings.Repeat("x", 200), i)
	}
	if err := r.LoadNTriples(strings.NewReader(doc.String())); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Materialize(); err != nil {
		t.Fatal(err)
	}
	s := NewWithConfig(r, Config{
		CacheEntries: 16,
		IdleTimeout:  300 * time.Millisecond,
		WriteTimeout: 500 * time.Millisecond,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q := url.QueryEscape(`SELECT ?s ?o WHERE { ?s <p> ?o }`)
	fmt.Fprintf(conn, "GET /query?query=%s HTTP/1.1\r\nHost: x\r\n\r\n", q)

	// Read nothing for well past WriteTimeout, then drain: the server
	// must have aborted the connection, so the drain hits EOF/reset in
	// bounded time instead of blocking forever.
	time.Sleep(1200 * time.Millisecond)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	n, err := io.Copy(io.Discard, bufio.NewReader(conn))
	if err == nil {
		// Clean EOF: the server closed the connection. Also acceptable.
		t.Logf("connection closed cleanly after %d bytes", n)
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatalf("connection still open and silent after the timeouts (drained %d bytes)", n)
	} else {
		t.Logf("connection aborted by server after %d bytes: %v", n, err)
	}
	cancel()
	<-done
}
