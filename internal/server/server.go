// Package server exposes a shared inferray.Reasoner over HTTP — the
// online half of the paper's offline-materialize/online-serve split
// (§1–2: Inferray is the storage-and-inference layer under a SPARQL
// engine). Queries are answered from the materialized closure by plain
// index scans; deltas posted while serving are staged and materialized
// incrementally, and the reasoner's snapshot-consistent read path keeps
// every in-flight query on a closure that is entirely pre- or
// post-delta.
//
// Endpoints:
//
//	GET  /query?query=SELECT…   SPARQL SELECT or ASK (the dialect of
//	                            docs/SPARQL.md: UNION, OPTIONAL, BIND,
//	                            VALUES, FILTER, GROUP BY aggregates,
//	                            DISTINCT, ORDER BY, LIMIT/OFFSET),
//	                            incrementally encoded
//	                            application/sparql-results+json response
//	                            with unbound cells omitted per the spec;
//	                            optional &limit=N row cap on top of the
//	                            query's own LIMIT
//	POST /query                 same, query in the body (application/sparql-query)
//	                            or form field "query"
//	POST /triples               N-Triples document staged as a delta and
//	                            materialized incrementally (durably, when the
//	                            reasoner has a data dir); JSON run stats
//	POST /update                SPARQL UPDATE (INSERT DATA, DELETE DATA,
//	                            DELETE WHERE; docs/SPARQL.md) in the body
//	                            (application/sparql-update) or form field
//	                            "update"; deletions maintain the closure
//	                            incrementally by delete-rederive; JSON stats
//	POST /checkpoint            admin: force a durability checkpoint (snapshot
//	                            image + WAL rotation); 409 on an in-memory
//	                            reasoner
//	GET  /wal                   replication: stream committed WAL records from
//	                            ?from=<gen>&records=<n>, long-polling for new
//	                            ones (durable reasoners only; see replication.go)
//	GET  /snapshot/latest       replication: the newest snapshot image for
//	                            follower bootstrap (durable reasoners only)
//	GET  /stats                 store size, traffic counters, build info,
//	                            last materialization, persistence state
//	GET  /healthz               liveness probe
//	GET  /readyz                readiness probe: 503 until the initial
//	                            recovery/materialization finished (see
//	                            SetReady), 200 after
//	GET  /metrics               Prometheus text exposition: the server's
//	                            HTTP families plus every family the
//	                            reasoner registers (reasoner, WAL, query
//	                            engine, build info)
//
// Every request is stamped with a request ID (the X-Request-ID header
// when the client sent one, a fresh random ID otherwise), echoed back
// in the response header and propagated into the reasoner's evaluation
// context so slow-query log records can be joined to access logs.
// EnablePprof additionally mounts net/http/pprof under /debug/pprof/.
//
// A configurable serving tier (Config / NewWithConfig) fronts the
// endpoints: GET /query reads through a result cache keyed on
// (normalized query, store generation) — provably never stale, because
// the generation changes on every mutation; entries for dead
// generations simply age out — bypassed per-request with Cache-Control:
// no-cache and reported in the X-Inferray-Cache header (hit | miss |
// bypass). Per-client token buckets refuse excess /query and
// /update+/triples traffic with 429 + Retry-After, a max-in-flight cap
// sheds queries with 503, and a query deadline aborts runaway
// evaluations with 504. Responses carry X-Inferray-Generation, the
// store generation they reflect: a write's generation is g, so any
// later response with generation >= g includes that write.
package server

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"inferray"
	"inferray/internal/metrics"
	"inferray/internal/qcache"
	"inferray/internal/ratelimit"
	"inferray/internal/rdf"
	"inferray/internal/sparql"
)

// Server serves one Reasoner. All handlers are safe for concurrent use:
// queries ride the reasoner's shared read lock while deltas serialize
// through its materialization lock.
type Server struct {
	r     *inferray.Reasoner
	start time.Time

	// reg holds the server's own HTTP-level metric families; GET
	// /metrics writes it followed by the reasoner's registry. Keeping
	// them separate means the server never reaches into internal metric
	// types through the public inferray API, and family names must
	// simply not collide (HTTP families are inferray_http_*).
	reg          *metrics.Registry
	httpRequests *metrics.CounterVec   // by endpoint and status code
	httpDuration *metrics.HistogramVec // by endpoint
	inFlight     *metrics.Gauge

	// Serving tier (see Config): query-result cache, per-client rate
	// limiters, and admission control. cache and the limiters are always
	// non-nil (their disabled forms are no-ops); admit is nil when no
	// in-flight cap is configured.
	cfg         Config
	cache       *qcache.Cache
	queryLimit  *ratelimit.Limiter
	updateLimit *ratelimit.Limiter
	admit       chan struct{}

	cacheHits     *metrics.Counter
	cacheMisses   *metrics.Counter
	cacheBypassed *metrics.Counter
	rlLimited     *metrics.CounterVec // by budget (query | update)
	admShed       *metrics.Counter
	admDeadline   *metrics.Counter

	// repl instruments the leader-side replication endpoints; non-nil
	// exactly when the reasoner is durable (only a durable reasoner has
	// a WAL to ship, so /wal and /snapshot/latest are only mounted then).
	repl *replMetrics
	// follower is the replication tailer feeding this server's reasoner,
	// set by NewFollower; nil on a leader or standalone server.
	follower *Follower

	// ready gates /readyz: true once the initial recovery and
	// materialization finished. New starts ready (embedders that
	// construct the server after loading need no extra call); the CLI
	// flips it off while loading and on before announcing the address.
	ready atomic.Bool
	// pprofOn mounts net/http/pprof under /debug/pprof/ (EnablePprof).
	pprofOn atomic.Bool

	queries      atomic.Int64
	queryErrors  atomic.Int64
	deltaBatches atomic.Int64
	deltaTriples atomic.Int64
	checkpoints  atomic.Int64
	updates      atomic.Int64
	updateErrors atomic.Int64

	// deltaMu serializes stage+materialize per request, so a delta
	// response reports the effect of that request's batch rather than
	// whatever happened to be pending (two concurrent posts would
	// otherwise race to drain the shared staging buffer, and one of
	// them would report a no-op).
	deltaMu sync.Mutex

	lastMu sync.Mutex
	last   inferray.Stats
	lastAt time.Time
	hasRun bool
}

// New wraps a reasoner (typically already loaded and materialized)
// with the default serving tier (DefaultConfig: caching on, no rate
// limiting, no admission cap). The server starts ready; use
// SetReady(false) before serving if the initial load happens while the
// listener is already accepting.
func New(r *inferray.Reasoner) *Server {
	return NewWithConfig(r, DefaultConfig())
}

// NewWithConfig wraps a reasoner with an explicit serving-tier
// configuration; the zero Config disables the cache, the limiters, the
// in-flight cap, and the query deadline.
func NewWithConfig(r *inferray.Reasoner, cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := metrics.NewRegistry()
	s := &Server{
		r:     r,
		start: time.Now(),
		reg:   reg,
		httpRequests: reg.CounterVec("inferray_http_requests_total",
			"HTTP requests completed, by endpoint and status code.",
			"endpoint", "code"),
		httpDuration: reg.HistogramVec("inferray_http_request_duration_seconds",
			"HTTP request wall time, by endpoint.",
			metrics.DurationBuckets(), "endpoint"),
		inFlight: reg.Gauge("inferray_http_in_flight_requests",
			"HTTP requests currently being handled."),

		cfg: cfg,
		cache: qcache.New(qcache.Options{
			MaxEntries:    cfg.CacheEntries,
			MaxBytes:      cfg.CacheBytes,
			MaxEntryBytes: cfg.CacheEntryBytes,
		}),
		queryLimit:  ratelimit.New(cfg.QueryRPS, cfg.QueryBurst),
		updateLimit: ratelimit.New(cfg.UpdateRPS, cfg.UpdateBurst),

		cacheHits: reg.Counter("inferray_cache_hits_total",
			"Query responses served from the result cache."),
		cacheMisses: reg.Counter("inferray_cache_misses_total",
			"Cacheable query requests that missed the result cache."),
		cacheBypassed: reg.Counter("inferray_cache_bypassed_total",
			"Query requests that skipped the result cache (no-cache, POST, or oversized)."),
		rlLimited: reg.CounterVec("inferray_ratelimit_limited_total",
			"Requests refused with 429, by budget.", "budget"),
		admShed: reg.Counter("inferray_admission_shed_total",
			"Query requests shed with 503 at the max-in-flight cap."),
		admDeadline: reg.Counter("inferray_admission_deadline_total",
			"Query evaluations aborted with 504 at the query deadline."),
	}
	if cfg.MaxInFlight > 0 {
		s.admit = make(chan struct{}, cfg.MaxInFlight)
	}
	if r.Durable() {
		s.repl = newReplMetrics(reg)
	}
	reg.GaugeFunc("inferray_cache_entries",
		"Entries currently held by the query-result cache.",
		func() float64 { return float64(s.cache.Snapshot().Entries) })
	reg.GaugeFunc("inferray_cache_bytes",
		"Body bytes currently held by the query-result cache.",
		func() float64 { return float64(s.cache.Snapshot().Bytes) })
	s.ready.Store(true)
	return s
}

// SetReady flips the /readyz readiness state: false answers 503 so a
// load balancer keeps traffic away during recovery or the initial
// materialization, true answers 200. /healthz is unaffected — the
// process is alive either way.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// EnablePprof mounts the net/http/pprof profiling handlers under
// /debug/pprof/ on handlers returned by subsequent Handler calls.
// Off by default: the profiling surface (heap dumps, CPU profiles,
// symbol tables) is opt-in.
func (s *Server) EnablePprof() { s.pprofOn.Store(true) }

// Handler returns the routed HTTP handler. Every endpoint is wrapped
// by the instrumentation middleware (request IDs, in-flight gauge,
// per-endpoint counters and latency histograms).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern, endpoint string, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(endpoint, h))
	}
	route("/query", "query", s.limited("query", s.queryLimit, s.admitted(s.handleQuery)))
	route("/triples", "triples", s.limited("update", s.updateLimit, s.handleTriples))
	route("/update", "update", s.limited("update", s.updateLimit, s.handleUpdate))
	route("/checkpoint", "checkpoint", s.handleCheckpoint)
	if s.r.Durable() {
		route("/wal", "wal", s.handleWAL)
		route("/snapshot/latest", "snapshot", s.handleSnapshotLatest)
	}
	route("/stats", "stats", s.handleStats)
	route("/healthz", "healthz", s.handleHealthz)
	route("/readyz", "readyz", s.handleReadyz)
	route("/metrics", "metrics", s.handleMetrics)
	if s.pprofOn.Load() {
		// pprof's own handlers are not instrumented: a 30-second CPU
		// profile would distort the latency histogram, and the debug
		// surface is not traffic worth alerting on.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// statusRecorder captures the status code a handler writes (200 when
// it never calls WriteHeader explicitly).
type statusRecorder struct {
	http.ResponseWriter
	code int
}

// WriteHeader records the status code and forwards it.
func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so streaming handlers (the
// long-polling GET /wal) can push frames out mid-response instead of
// buffering until the poll window closes.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps one endpoint with the observability middleware:
// request-ID stamping (honoring an incoming X-Request-ID, minting a
// random one otherwise, echoing it back, and propagating it through
// the request context into the reasoner's slow-query log), the
// in-flight gauge, and the per-endpoint request counter and latency
// histogram.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	requests := s.httpRequests
	duration := s.httpDuration.With(endpoint)
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		id := req.Header.Get("X-Request-ID")
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		req = req.WithContext(inferray.ContextWithRequestID(req.Context(), id))

		s.inFlight.Inc()
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(sr, req)
		duration.ObserveDuration(time.Since(start))
		s.inFlight.Dec()
		requests.With(endpoint, strconv.Itoa(sr.code)).Inc()
	})
}

// newRequestID mints a 16-hex-character random request ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; an ID derived from
		// the clock still serves its correlation purpose.
		return strconv.FormatInt(time.Now().UnixNano(), 16)
	}
	return hex.EncodeToString(b[:])
}

// Serve accepts connections on ln until ctx is canceled, then shuts
// down gracefully: in-flight requests get up to ten seconds to finish.
// Connection hygiene comes from Config: IdleTimeout reaps kept-alive
// connections between requests and WriteTimeout bounds the whole
// request/response cycle, so a client that stops reading its response
// (or never sends a next request) cannot hold a connection forever.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       s.cfg.IdleTimeout,
		WriteTimeout:      s.cfg.WriteTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// ListenAndServe binds addr and calls Serve.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// ---------------------------------------------------------------- /query

// sparqlResults is the SPARQL 1.1 Query Results JSON document (the
// server streams it by hand in resultStream; this struct shape is kept
// for tests and clients that decode whole documents).
type sparqlResults struct {
	Head    resultsHead    `json:"head"`
	Results resultsSection `json:"results"`
}

// askResults is the SPARQL 1.1 boolean results document for ASK.
type askResults struct {
	Head    struct{} `json:"head"`
	Boolean bool     `json:"boolean"`
}

type resultsHead struct {
	Vars []string `json:"vars"`
}

type resultsSection struct {
	Bindings []map[string]binding `json:"bindings"`
}

// binding is one RDF term in results-JSON form.
type binding struct {
	Type     string `json:"type"` // "uri" | "literal" | "bnode"
	Value    string `json:"value"`
	Lang     string `json:"xml:lang,omitempty"`
	Datatype string `json:"datatype,omitempty"`
}

// queryError is the structured 400 body for a failed /query: the
// message, and for parse failures the exact position internal/sparql
// reported (1-based line and column plus the offending token).
type queryError struct {
	Error  string `json:"error"`
	Line   int    `json:"line,omitempty"`
	Column int    `json:"column,omitempty"`
	Token  string `json:"token,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, req *http.Request) {
	var text string
	var limitParam string
	switch req.Method {
	case http.MethodGet:
		text = req.URL.Query().Get("query")
		limitParam = req.URL.Query().Get("limit")
	case http.MethodPost:
		ct := req.Header.Get("Content-Type")
		if strings.HasPrefix(ct, "application/sparql-query") {
			// MaxBytesReader (not LimitReader) so an oversized query is
			// an error, never silently truncated into a different query.
			body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, 1<<20))
			if err != nil {
				httpError(w, http.StatusBadRequest, "reading body: %v", err)
				return
			}
			text = string(body)
			limitParam = req.URL.Query().Get("limit")
		} else {
			text = req.FormValue("query")
			limitParam = req.FormValue("limit")
		}
	default:
		w.Header().Set("Allow", "GET, POST")
		httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}
	if strings.TrimSpace(text) == "" {
		httpError(w, http.StatusBadRequest, "missing query parameter")
		return
	}
	maxRows := 0
	if limitParam != "" {
		n, err := strconv.Atoi(limitParam)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "limit must be a non-negative integer, got %q", limitParam)
			return
		}
		maxRows = n
	}

	// Cache lookup: GET only, opt-out via Cache-Control: no-cache. The
	// key's generation is read before evaluation; on a miss the entry is
	// stored under the generation the evaluation actually ran at
	// (QueryResult.Generation, captured under the read lock), so a
	// cached body is exact for its key even if a write lands between
	// the lookup and the evaluation.
	cacheable := req.Method == http.MethodGet && s.cache.Enabled()
	cacheState := "bypass"
	var key qcache.Key
	if cacheable && wantsNoCache(req) {
		cacheable = false
		s.cache.Bypass()
		s.cacheBypassed.Inc()
	}
	if cacheable {
		key = qcache.Key{Query: qcache.Normalize(text), Generation: s.r.Generation(), MaxRows: maxRows}
		if e, ok := s.cache.Get(key); ok {
			s.cacheHits.Inc()
			s.queries.Add(1)
			w.Header().Set("X-Inferray-Cache", "hit")
			genHeader(w, key.Generation)
			w.Header().Set("Content-Type", e.ContentType)
			_, _ = w.Write(e.Body)
			return
		}
		s.cacheMisses.Inc()
		cacheState = "miss"
	}

	ctx := req.Context()
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}

	// The results document is encoded by a streaming writer: the head
	// as soon as the query is planned, one binding at a time as rows
	// are produced — never a whole-document marshal. It is encoded
	// into a buffer and put on the wire only after ExecFunc returns,
	// because ExecFunc runs under the reasoner's read lock: writing to
	// a stalled client from inside the callbacks would let one slow
	// reader hold the lock, block the next Materialize, and behind it
	// every new query. Every error ExecFunc can return surfaces before
	// the head callback runs, so a 400 is always still possible when
	// it matters; the limit parameter is the caller's tool for
	// bounding the buffered size.
	st := &resultStream{}
	res, err := s.r.ExecFuncCtx(ctx, text, maxRows, st.head, st.row)
	if err != nil {
		s.queryErrors.Add(1)
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.admDeadline.Inc()
			httpError(w, http.StatusGatewayTimeout, "query exceeded the %v deadline", s.cfg.QueryTimeout)
		case errors.Is(err, context.Canceled):
			// The client went away; the status is for the access log.
			httpError(w, http.StatusServiceUnavailable, "query canceled")
		default:
			writeQueryError(w, err)
		}
		return
	}
	s.queries.Add(1)

	const resultsType = "application/sparql-results+json"
	var body []byte
	if res.Ask {
		enc, _ := json.Marshal(askResults{Boolean: res.Truth})
		body = append(enc, '\n')
	} else {
		st.close()
		body = st.buf.Bytes()
	}
	if cacheable {
		key.Generation = res.Generation
		if !s.cache.Put(key, qcache.Entry{Body: body, ContentType: resultsType}) {
			// Oversized for the cache: served, just not stored.
			s.cache.Bypass()
			s.cacheBypassed.Inc()
			cacheState = "bypass"
		}
	}
	w.Header().Set("X-Inferray-Cache", cacheState)
	genHeader(w, res.Generation)
	w.Header().Set("Content-Type", resultsType)
	_, _ = w.Write(body)
}

// writeQueryError sends the structured 400, lifting position info out
// of parse errors.
func writeQueryError(w http.ResponseWriter, err error) {
	qe := queryError{Error: err.Error()}
	var pe *sparql.ParseError
	if errors.As(err, &pe) {
		qe.Line, qe.Column, qe.Token = pe.Line, pe.Col, pe.Token
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadRequest)
	_ = json.NewEncoder(w).Encode(qe)
}

// resultStream encodes a sparql-results+json document incrementally
// into a buffer: the envelope and head on the first callback, one
// encoded binding per row, and the closing brackets in close — bounded
// per-row work, no whole-document marshal.
type resultStream struct {
	buf     bytes.Buffer
	started bool
	rows    int
}

func (st *resultStream) head(vars []string) {
	names, _ := json.Marshal(vars)
	fmt.Fprintf(&st.buf, `{"head":{"vars":%s},"results":{"bindings":[`, names)
	st.started = true
}

func (st *resultStream) row(row map[string]string) bool {
	b := make(map[string]binding, len(row))
	for name, term := range row {
		b[name] = termBinding(term)
	}
	enc, err := json.Marshal(b)
	if err != nil {
		return false
	}
	if st.rows > 0 {
		st.buf.WriteByte(',')
	}
	st.buf.Write(enc)
	st.rows++
	return true
}

func (st *resultStream) close() {
	if !st.started {
		// A query with no head callback (defensive; ExecFunc always
		// calls it for SELECT) still gets a valid empty document.
		st.head([]string{})
	}
	st.buf.WriteString("]}}\n")
}

// termBinding converts an N-Triples surface form into results-JSON.
func termBinding(term string) binding {
	switch {
	case rdf.IsIRI(term):
		return binding{Type: "uri", Value: term[1 : len(term)-1]}
	case rdf.IsBlank(term):
		return binding{Type: "bnode", Value: term[2:]}
	case rdf.IsLiteral(term):
		lex, ok := rdf.UnescapeLiteral(term)
		if !ok {
			return binding{Type: "literal", Value: term}
		}
		b := binding{Type: "literal", Value: lex}
		switch suffix := term[literalEnd(term):]; {
		case strings.HasPrefix(suffix, "@"):
			b.Lang = suffix[1:]
		case strings.HasPrefix(suffix, "^^<") && strings.HasSuffix(suffix, ">"):
			b.Datatype = suffix[3 : len(suffix)-1]
		}
		return b
	default:
		return binding{Type: "literal", Value: term}
	}
}

// literalEnd returns the index just past the closing quote of a literal
// surface form (len(term) when unterminated).
func literalEnd(term string) int {
	for i := 1; i < len(term); i++ {
		switch term[i] {
		case '\\':
			i++
		case '"':
			return i + 1
		}
	}
	return len(term)
}

// -------------------------------------------------------------- /triples

// deltaResponse reports what one posted delta did.
type deltaResponse struct {
	Staged      int    `json:"staged"`      // triples parsed from the body
	NewInput    int    `json:"new_input"`   // distinct triples not already stored
	Inferred    int    `json:"inferred"`    // further closure growth
	Total       int    `json:"total"`       // store size after materialization
	Iterations  int    `json:"iterations"`  // fixpoint rounds
	Incremental bool   `json:"incremental"` // false only for the very first load
	Duration    string `json:"duration"`    // wall time of the materialization
	DurationMS  int64  `json:"duration_ms"`
}

// limitBody bounds a write request's body at cfg.MaxBodyBytes (negative
// = unlimited). Reads past the limit fail with *http.MaxBytesError,
// which tooLarge maps to a structured 413.
func (s *Server) limitBody(w http.ResponseWriter, req *http.Request) io.ReadCloser {
	if s.cfg.MaxBodyBytes < 0 {
		return req.Body
	}
	return http.MaxBytesReader(w, req.Body, s.cfg.MaxBodyBytes)
}

// readErrTracker remembers the first non-EOF error a reader returned.
// The N-Triples scanner tokenizes whatever bytes arrived before a read
// error and reports the torn last line as a parse error, so the
// body-limit overflow has to be observed at the reader, not inferred
// from the parser's error.
type readErrTracker struct {
	r   io.Reader
	err error
}

// Read forwards to the wrapped reader, recording its first real error.
func (tr *readErrTracker) Read(p []byte) (int, error) {
	n, err := tr.r.Read(p)
	if err != nil && err != io.EOF && tr.err == nil {
		tr.err = err
	}
	return n, err
}

// tooLarge answers a body-limit overflow with a structured 413 carrying
// the configured limit; reports whether err was one.
func (s *Server) tooLarge(w http.ResponseWriter, err error) bool {
	var mbe *http.MaxBytesError
	if !errors.As(err, &mbe) {
		return false
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusRequestEntityTooLarge)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"error":       fmt.Sprintf("request body exceeds the %d-byte limit", s.cfg.MaxBodyBytes),
		"limit_bytes": s.cfg.MaxBodyBytes,
	})
	return true
}

func (s *Server) handleTriples(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.readOnly(w, req) {
		return
	}
	var batch []inferray.Triple
	body := &readErrTracker{r: s.limitBody(w, req)}
	err := rdf.ReadNTriples(body, func(t rdf.Triple) error {
		batch = append(batch, t)
		return nil
	})
	if err != nil {
		if s.tooLarge(w, body.err) || s.tooLarge(w, err) {
			return
		}
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.deltaMu.Lock()
	defer s.deltaMu.Unlock()
	s.r.AddTriples(batch)
	staged := len(batch)
	st, err := s.r.Materialize()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.deltaBatches.Add(1)
	s.deltaTriples.Add(int64(staged))
	s.lastMu.Lock()
	s.last, s.lastAt, s.hasRun = st, time.Now(), true
	s.lastMu.Unlock()

	genHeader(w, s.r.Generation())
	writeJSON(w, "application/json", deltaResponse{
		Staged:      staged,
		NewInput:    st.InputTriples,
		Inferred:    st.InferredTriples,
		Total:       st.TotalTriples,
		Iterations:  st.Iterations,
		Incremental: st.Incremental,
		Duration:    st.TotalTime.String(),
		DurationMS:  st.TotalTime.Milliseconds(),
	})
}

// --------------------------------------------------------------- /update

// updateResponse reports what one SPARQL UPDATE request did.
type updateResponse struct {
	Ops             int    `json:"ops"`              // operations executed
	Inserted        int    `json:"inserted"`         // triples asserted by INSERT DATA
	Deleted         int    `json:"deleted"`          // asserted triples retracted
	Total           int    `json:"total"`            // visible closure size afterwards
	EncodingDropped bool   `json:"encoding_dropped"` // a schema delete disabled the hierarchy encoding
	Duration        string `json:"duration"`
	DurationMS      int64  `json:"duration_ms"`
}

func (s *Server) handleUpdate(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.readOnly(w, req) {
		return
	}
	req.Body = s.limitBody(w, req)
	var text string
	ct := req.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/sparql-update") {
		body, err := io.ReadAll(req.Body)
		if err != nil {
			if s.tooLarge(w, err) {
				return
			}
			httpError(w, http.StatusBadRequest, "reading body: %v", err)
			return
		}
		text = string(body)
	} else {
		if err := req.ParseForm(); err != nil {
			if s.tooLarge(w, err) {
				return
			}
			httpError(w, http.StatusBadRequest, "parsing form: %v", err)
			return
		}
		text = req.FormValue("update")
	}
	if strings.TrimSpace(text) == "" {
		httpError(w, http.StatusBadRequest, "missing update parameter")
		return
	}
	// Serialize against /triples and /checkpoint: Update drains the
	// shared staging buffer through a materialization, and deletions
	// must not interleave with another request's stage+report cycle.
	s.deltaMu.Lock()
	start := time.Now()
	st, err := s.r.Update(text)
	elapsed := time.Since(start)
	s.deltaMu.Unlock()
	if err != nil {
		s.updateErrors.Add(1)
		var pe *sparql.ParseError
		if errors.As(err, &pe) {
			writeQueryError(w, err)
		} else {
			httpError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	s.updates.Add(1)
	genHeader(w, s.r.Generation())
	writeJSON(w, "application/json", updateResponse{
		Ops:             st.Ops,
		Inserted:        st.Inserted,
		Deleted:         st.Deleted,
		Total:           s.r.Size(),
		EncodingDropped: st.EncodingDropped,
		Duration:        elapsed.String(),
		DurationMS:      elapsed.Milliseconds(),
	})
}

// ------------------------------------------------------------ /checkpoint

// checkpointResponse reports a forced checkpoint.
type checkpointResponse struct {
	Generation    uint64 `json:"generation"`
	Triples       int    `json:"triples"`
	SnapshotBytes int64  `json:"snapshot_bytes"`
	Duration      string `json:"duration"`
	DurationMS    int64  `json:"duration_ms"`
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.readOnly(w, req) {
		return
	}
	// Serialize against /triples: Checkpoint drains pending triples
	// through a materialization, and two drains racing would misreport
	// each other's batches.
	s.deltaMu.Lock()
	info, err := s.r.Checkpoint()
	s.deltaMu.Unlock()
	if err == inferray.ErrNotDurable {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.checkpoints.Add(1)
	writeJSON(w, "application/json", checkpointResponse{
		Generation:    info.Generation,
		Triples:       info.Triples,
		SnapshotBytes: info.SnapshotBytes,
		Duration:      info.Duration.String(),
		DurationMS:    info.Duration.Milliseconds(),
	})
}

// ---------------------------------------------------------------- /stats

// statsResponse is the /stats document.
type statsResponse struct {
	Triples         int              `json:"triples"`
	Pending         int              `json:"pending"`
	Fragment        string           `json:"fragment"`
	Version         string           `json:"version"`
	GoVersion       string           `json:"go_version"`
	UptimeSeconds   int64            `json:"uptime_seconds"`
	Queries         int64            `json:"queries"`
	QueryErrors     int64            `json:"query_errors"`
	DeltaBatches    int64            `json:"delta_batches"`
	DeltaTriples    int64            `json:"delta_triples"`
	Updates         int64            `json:"updates"`
	UpdateErrors    int64            `json:"update_errors"`
	LastMaterialize *lastMaterialize `json:"last_materialize,omitempty"`
	Durability      *durabilityInfo  `json:"durability,omitempty"`
	Hierarchy       *hierarchyInfo   `json:"hierarchy,omitempty"`

	// Generation is the store generation counter (Reasoner.Generation):
	// bumped on every mutation, it keys the query-result cache and is
	// echoed on responses as X-Inferray-Generation.
	Generation  uint64           `json:"generation"`
	Cache       *qcache.Stats    `json:"cache,omitempty"`
	Ratelimit   *ratelimitStats  `json:"ratelimit,omitempty"`
	Admission   *admissionInfo   `json:"admission,omitempty"`
	Replication *replicationInfo `json:"replication,omitempty"`
}

// replicationInfo is the replication section of /stats: the leader form
// (role "leader": tail position plus shipping counters) on a durable
// server, the follower form (role "follower": the tailer's full state)
// when a Follower is attached.
type replicationInfo struct {
	Role string `json:"role"` // "leader" | "follower"

	// Leader fields.
	WALGeneration  uint64 `json:"wal_generation,omitempty"`
	WALRecords     int    `json:"wal_records,omitempty"`
	ShippedRecords uint64 `json:"shipped_records,omitempty"`
	ShippedBytes   uint64 `json:"shipped_bytes,omitempty"`
	WALRequests    uint64 `json:"wal_requests,omitempty"`
	Truncations    uint64 `json:"truncations,omitempty"`
	SnapshotShips  uint64 `json:"snapshot_ships,omitempty"`

	// Follower fields.
	Follower *FollowerStats `json:"follower,omitempty"`
}

// ratelimitStats is the rate-limiting section of /stats, present when
// either budget is enabled.
type ratelimitStats struct {
	Query  ratelimit.Stats `json:"query"`
	Update ratelimit.Stats `json:"update"`
}

// admissionInfo is the admission-control section of /stats, present
// when an in-flight cap or a query deadline is configured.
type admissionInfo struct {
	MaxInFlight      int    `json:"max_in_flight"`
	Shed             uint64 `json:"shed"`
	QueryTimeoutMS   int64  `json:"query_timeout_ms"`
	DeadlineExceeded uint64 `json:"deadline_exceeded"`
}

// hierarchyInfo is the hierarchy-encoding section of /stats, present
// only while the interval encoding is active. Triples (above) counts
// the visible closure; materialized_triples the physically stored
// subset, virtual_triples the remainder the interval index answers.
type hierarchyInfo struct {
	MaterializedTriples int `json:"materialized_triples"`
	VirtualTriples      int `json:"virtual_triples"`
	Classes             int `json:"classes"`
	Properties          int `json:"properties"`
	Intervals           int `json:"intervals"`
}

// durabilityInfo is the persistence section of /stats, present only
// when the reasoner has a data dir.
type durabilityInfo struct {
	Dir              string `json:"dir"`
	SyncPolicy       string `json:"sync_policy"`
	Generation       uint64 `json:"generation"`
	WALRecords       int    `json:"wal_records"`
	WALBytes         int64  `json:"wal_bytes"`
	Checkpoints      int64  `json:"checkpoints"` // forced via this server
	LastCheckpointAt string `json:"last_checkpoint_at,omitempty"`
	SnapshotBytes    int64  `json:"snapshot_bytes,omitempty"`
	CheckpointError  string `json:"checkpoint_error,omitempty"`

	RecoveredFromSnapshot bool `json:"recovered_from_snapshot"`
	ReplayedRecords       int  `json:"replayed_records"`
	ReplayedTriples       int  `json:"replayed_triples"`
	TruncatedTail         bool `json:"truncated_tail"`
}

type lastMaterialize struct {
	At          string `json:"at"`
	NewInput    int    `json:"new_input"`
	Inferred    int    `json:"inferred"`
	Total       int    `json:"total"`
	Iterations  int    `json:"iterations"`
	Incremental bool   `json:"incremental"`
	Duration    string `json:"duration"`
}

func (s *Server) handleStats(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	version, goVersion := inferray.Version()
	resp := statsResponse{
		Triples:       s.r.Size(),
		Pending:       s.r.Pending(),
		Fragment:      s.r.Fragment().String(),
		Version:       version,
		GoVersion:     goVersion,
		UptimeSeconds: int64(time.Since(s.start).Seconds()),
		Queries:       s.queries.Load(),
		QueryErrors:   s.queryErrors.Load(),
		DeltaBatches:  s.deltaBatches.Load(),
		DeltaTriples:  s.deltaTriples.Load(),
		Updates:       s.updates.Load(),
		UpdateErrors:  s.updateErrors.Load(),
		Generation:    s.r.Generation(),
	}
	if s.cache.Enabled() {
		cs := s.cache.Snapshot()
		resp.Cache = &cs
	}
	if s.queryLimit.Enabled() || s.updateLimit.Enabled() {
		resp.Ratelimit = &ratelimitStats{
			Query:  s.queryLimit.Snapshot(),
			Update: s.updateLimit.Snapshot(),
		}
	}
	if s.admit != nil || s.cfg.QueryTimeout > 0 {
		resp.Admission = &admissionInfo{
			MaxInFlight:      s.cfg.MaxInFlight,
			Shed:             s.admShed.Value(),
			QueryTimeoutMS:   s.cfg.QueryTimeout.Milliseconds(),
			DeadlineExceeded: s.admDeadline.Value(),
		}
	}
	if hs := s.r.HierarchyStats(); hs.Encoded {
		resp.Hierarchy = &hierarchyInfo{
			MaterializedTriples: hs.MaterializedTriples,
			VirtualTriples:      hs.VirtualTriples,
			Classes:             hs.Classes,
			Properties:          hs.Properties,
			Intervals:           hs.Intervals,
		}
	}
	if ds, ok := s.r.DurabilityStats(); ok {
		info := &durabilityInfo{
			Dir:                   ds.Dir,
			SyncPolicy:            ds.SyncPolicy,
			Generation:            ds.Generation,
			WALRecords:            ds.WALRecords,
			WALBytes:              ds.WALBytes,
			Checkpoints:           s.checkpoints.Load(),
			SnapshotBytes:         ds.SnapshotBytes,
			CheckpointError:       ds.CheckpointError,
			RecoveredFromSnapshot: ds.RecoveredFromSnapshot,
			ReplayedRecords:       ds.ReplayedRecords,
			ReplayedTriples:       ds.ReplayedTriples,
			TruncatedTail:         ds.TruncatedTail,
		}
		if !ds.LastCheckpointAt.IsZero() {
			info.LastCheckpointAt = ds.LastCheckpointAt.UTC().Format(time.RFC3339)
		}
		resp.Durability = info
	}
	if s.repl != nil {
		ri := &replicationInfo{
			Role:           "leader",
			ShippedRecords: s.repl.shippedRecords.Value(),
			ShippedBytes:   s.repl.shippedBytes.Value(),
			WALRequests:    s.repl.walRequests.Value(),
			Truncations:    s.repl.truncations.Value(),
			SnapshotShips:  s.repl.snapshotShips.Value(),
		}
		if tail, err := s.r.WALTail(); err == nil {
			ri.WALGeneration, ri.WALRecords = tail.Generation, tail.Records
		}
		resp.Replication = ri
	} else if s.follower != nil {
		fs := s.follower.Stats()
		resp.Replication = &replicationInfo{Role: "follower", Follower: &fs}
	}
	s.lastMu.Lock()
	if s.hasRun {
		resp.LastMaterialize = &lastMaterialize{
			At:          s.lastAt.UTC().Format(time.RFC3339),
			NewInput:    s.last.InputTriples,
			Inferred:    s.last.InferredTriples,
			Total:       s.last.TotalTriples,
			Iterations:  s.last.Iterations,
			Incremental: s.last.Incremental,
			Duration:    s.last.TotalTime.String(),
		}
	}
	s.lastMu.Unlock()
	writeJSON(w, "application/json", resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, "application/json", map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe: 200 once the initial recovery
// and materialization finished, 503 while still loading (SetReady).
func (s *Server) handleReadyz(w http.ResponseWriter, req *http.Request) {
	if !s.ready.Load() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]string{"status": "loading"})
		return
	}
	writeJSON(w, "application/json", map[string]string{"status": "ok"})
}

// -------------------------------------------------------------- /metrics

// handleMetrics renders the full metric surface in the Prometheus text
// exposition format: the server's HTTP families first, then everything
// the reasoner registers (reasoner, WAL, query engine, build info).
func (s *Server) handleMetrics(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		return // client went away mid-scrape
	}
	_ = s.r.WriteMetrics(w)
}

// ---------------------------------------------------------------- shared

func writeJSON(w http.ResponseWriter, contentType string, v interface{}) {
	w.Header().Set("Content-Type", contentType)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing useful left to do.
		_ = err
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{
		"error": fmt.Sprintf(format, args...),
	})
}
