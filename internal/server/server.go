// Package server exposes a shared inferray.Reasoner over HTTP — the
// online half of the paper's offline-materialize/online-serve split
// (§1–2: Inferray is the storage-and-inference layer under a SPARQL
// engine). Queries are answered from the materialized closure by plain
// index scans; deltas posted while serving are staged and materialized
// incrementally, and the reasoner's snapshot-consistent read path keeps
// every in-flight query on a closure that is entirely pre- or
// post-delta.
//
// Endpoints:
//
//	GET  /query?query=SELECT…   SPARQL SELECT or ASK (the dialect of
//	                            docs/SPARQL.md: UNION, OPTIONAL, BIND,
//	                            VALUES, FILTER, GROUP BY aggregates,
//	                            DISTINCT, ORDER BY, LIMIT/OFFSET),
//	                            incrementally encoded
//	                            application/sparql-results+json response
//	                            with unbound cells omitted per the spec;
//	                            optional &limit=N row cap on top of the
//	                            query's own LIMIT
//	POST /query                 same, query in the body (application/sparql-query)
//	                            or form field "query"
//	POST /triples               N-Triples document staged as a delta and
//	                            materialized incrementally (durably, when the
//	                            reasoner has a data dir); JSON run stats
//	POST /update                SPARQL UPDATE (INSERT DATA, DELETE DATA,
//	                            DELETE WHERE; docs/SPARQL.md) in the body
//	                            (application/sparql-update) or form field
//	                            "update"; deletions maintain the closure
//	                            incrementally by delete-rederive; JSON stats
//	POST /checkpoint            admin: force a durability checkpoint (snapshot
//	                            image + WAL rotation); 409 on an in-memory
//	                            reasoner
//	GET  /stats                 store size, traffic counters, last
//	                            materialization, persistence state
//	GET  /healthz               liveness probe
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"inferray"
	"inferray/internal/rdf"
	"inferray/internal/sparql"
)

// maxDeltaBytes bounds a POST /triples body; a delta is an online
// update, not a bulk load.
const maxDeltaBytes = 64 << 20

// Server serves one Reasoner. All handlers are safe for concurrent use:
// queries ride the reasoner's shared read lock while deltas serialize
// through its materialization lock.
type Server struct {
	r     *inferray.Reasoner
	start time.Time

	queries      atomic.Int64
	queryErrors  atomic.Int64
	deltaBatches atomic.Int64
	deltaTriples atomic.Int64
	checkpoints  atomic.Int64
	updates      atomic.Int64
	updateErrors atomic.Int64

	// deltaMu serializes stage+materialize per request, so a delta
	// response reports the effect of that request's batch rather than
	// whatever happened to be pending (two concurrent posts would
	// otherwise race to drain the shared staging buffer, and one of
	// them would report a no-op).
	deltaMu sync.Mutex

	lastMu sync.Mutex
	last   inferray.Stats
	lastAt time.Time
	hasRun bool
}

// New wraps a reasoner (typically already loaded and materialized).
func New(r *inferray.Reasoner) *Server {
	return &Server{r: r, start: time.Now()}
}

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/triples", s.handleTriples)
	mux.HandleFunc("/update", s.handleUpdate)
	mux.HandleFunc("/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// Serve accepts connections on ln until ctx is canceled, then shuts
// down gracefully: in-flight requests get up to ten seconds to finish.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// ListenAndServe binds addr and calls Serve.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// ---------------------------------------------------------------- /query

// sparqlResults is the SPARQL 1.1 Query Results JSON document (the
// server streams it by hand in resultStream; this struct shape is kept
// for tests and clients that decode whole documents).
type sparqlResults struct {
	Head    resultsHead    `json:"head"`
	Results resultsSection `json:"results"`
}

// askResults is the SPARQL 1.1 boolean results document for ASK.
type askResults struct {
	Head    struct{} `json:"head"`
	Boolean bool     `json:"boolean"`
}

type resultsHead struct {
	Vars []string `json:"vars"`
}

type resultsSection struct {
	Bindings []map[string]binding `json:"bindings"`
}

// binding is one RDF term in results-JSON form.
type binding struct {
	Type     string `json:"type"` // "uri" | "literal" | "bnode"
	Value    string `json:"value"`
	Lang     string `json:"xml:lang,omitempty"`
	Datatype string `json:"datatype,omitempty"`
}

// queryError is the structured 400 body for a failed /query: the
// message, and for parse failures the exact position internal/sparql
// reported (1-based line and column plus the offending token).
type queryError struct {
	Error  string `json:"error"`
	Line   int    `json:"line,omitempty"`
	Column int    `json:"column,omitempty"`
	Token  string `json:"token,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, req *http.Request) {
	var text string
	var limitParam string
	switch req.Method {
	case http.MethodGet:
		text = req.URL.Query().Get("query")
		limitParam = req.URL.Query().Get("limit")
	case http.MethodPost:
		ct := req.Header.Get("Content-Type")
		if strings.HasPrefix(ct, "application/sparql-query") {
			// MaxBytesReader (not LimitReader) so an oversized query is
			// an error, never silently truncated into a different query.
			body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, 1<<20))
			if err != nil {
				httpError(w, http.StatusBadRequest, "reading body: %v", err)
				return
			}
			text = string(body)
			limitParam = req.URL.Query().Get("limit")
		} else {
			text = req.FormValue("query")
			limitParam = req.FormValue("limit")
		}
	default:
		w.Header().Set("Allow", "GET, POST")
		httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}
	if strings.TrimSpace(text) == "" {
		httpError(w, http.StatusBadRequest, "missing query parameter")
		return
	}
	maxRows := 0
	if limitParam != "" {
		n, err := strconv.Atoi(limitParam)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "limit must be a non-negative integer, got %q", limitParam)
			return
		}
		maxRows = n
	}

	// The results document is encoded by a streaming writer: the head
	// as soon as the query is planned, one binding at a time as rows
	// are produced — never a whole-document marshal. It is encoded
	// into a buffer and put on the wire only after ExecFunc returns,
	// because ExecFunc runs under the reasoner's read lock: writing to
	// a stalled client from inside the callbacks would let one slow
	// reader hold the lock, block the next Materialize, and behind it
	// every new query. Every error ExecFunc can return surfaces before
	// the head callback runs, so a 400 is always still possible when
	// it matters; the limit parameter is the caller's tool for
	// bounding the buffered size.
	st := &resultStream{}
	res, err := s.r.ExecFunc(text, maxRows, st.head, st.row)
	if err != nil {
		s.queryErrors.Add(1)
		writeQueryError(w, err)
		return
	}
	s.queries.Add(1)
	if res.Ask {
		writeJSON(w, "application/sparql-results+json", askResults{Boolean: res.Truth})
		return
	}
	st.close()
	w.Header().Set("Content-Type", "application/sparql-results+json")
	_, _ = w.Write(st.buf.Bytes())
}

// writeQueryError sends the structured 400, lifting position info out
// of parse errors.
func writeQueryError(w http.ResponseWriter, err error) {
	qe := queryError{Error: err.Error()}
	var pe *sparql.ParseError
	if errors.As(err, &pe) {
		qe.Line, qe.Column, qe.Token = pe.Line, pe.Col, pe.Token
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadRequest)
	_ = json.NewEncoder(w).Encode(qe)
}

// resultStream encodes a sparql-results+json document incrementally
// into a buffer: the envelope and head on the first callback, one
// encoded binding per row, and the closing brackets in close — bounded
// per-row work, no whole-document marshal.
type resultStream struct {
	buf     bytes.Buffer
	started bool
	rows    int
}

func (st *resultStream) head(vars []string) {
	names, _ := json.Marshal(vars)
	fmt.Fprintf(&st.buf, `{"head":{"vars":%s},"results":{"bindings":[`, names)
	st.started = true
}

func (st *resultStream) row(row map[string]string) bool {
	b := make(map[string]binding, len(row))
	for name, term := range row {
		b[name] = termBinding(term)
	}
	enc, err := json.Marshal(b)
	if err != nil {
		return false
	}
	if st.rows > 0 {
		st.buf.WriteByte(',')
	}
	st.buf.Write(enc)
	st.rows++
	return true
}

func (st *resultStream) close() {
	if !st.started {
		// A query with no head callback (defensive; ExecFunc always
		// calls it for SELECT) still gets a valid empty document.
		st.head([]string{})
	}
	st.buf.WriteString("]}}\n")
}

// termBinding converts an N-Triples surface form into results-JSON.
func termBinding(term string) binding {
	switch {
	case rdf.IsIRI(term):
		return binding{Type: "uri", Value: term[1 : len(term)-1]}
	case rdf.IsBlank(term):
		return binding{Type: "bnode", Value: term[2:]}
	case rdf.IsLiteral(term):
		lex, ok := rdf.UnescapeLiteral(term)
		if !ok {
			return binding{Type: "literal", Value: term}
		}
		b := binding{Type: "literal", Value: lex}
		switch suffix := term[literalEnd(term):]; {
		case strings.HasPrefix(suffix, "@"):
			b.Lang = suffix[1:]
		case strings.HasPrefix(suffix, "^^<") && strings.HasSuffix(suffix, ">"):
			b.Datatype = suffix[3 : len(suffix)-1]
		}
		return b
	default:
		return binding{Type: "literal", Value: term}
	}
}

// literalEnd returns the index just past the closing quote of a literal
// surface form (len(term) when unterminated).
func literalEnd(term string) int {
	for i := 1; i < len(term); i++ {
		switch term[i] {
		case '\\':
			i++
		case '"':
			return i + 1
		}
	}
	return len(term)
}

// -------------------------------------------------------------- /triples

// deltaResponse reports what one posted delta did.
type deltaResponse struct {
	Staged      int    `json:"staged"`      // triples parsed from the body
	NewInput    int    `json:"new_input"`   // distinct triples not already stored
	Inferred    int    `json:"inferred"`    // further closure growth
	Total       int    `json:"total"`       // store size after materialization
	Iterations  int    `json:"iterations"`  // fixpoint rounds
	Incremental bool   `json:"incremental"` // false only for the very first load
	Duration    string `json:"duration"`    // wall time of the materialization
	DurationMS  int64  `json:"duration_ms"`
}

func (s *Server) handleTriples(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var batch []inferray.Triple
	err := rdf.ReadNTriples(http.MaxBytesReader(w, req.Body, maxDeltaBytes), func(t rdf.Triple) error {
		batch = append(batch, t)
		return nil
	})
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.deltaMu.Lock()
	defer s.deltaMu.Unlock()
	s.r.AddTriples(batch)
	staged := len(batch)
	st, err := s.r.Materialize()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.deltaBatches.Add(1)
	s.deltaTriples.Add(int64(staged))
	s.lastMu.Lock()
	s.last, s.lastAt, s.hasRun = st, time.Now(), true
	s.lastMu.Unlock()

	writeJSON(w, "application/json", deltaResponse{
		Staged:      staged,
		NewInput:    st.InputTriples,
		Inferred:    st.InferredTriples,
		Total:       st.TotalTriples,
		Iterations:  st.Iterations,
		Incremental: st.Incremental,
		Duration:    st.TotalTime.String(),
		DurationMS:  st.TotalTime.Milliseconds(),
	})
}

// --------------------------------------------------------------- /update

// updateResponse reports what one SPARQL UPDATE request did.
type updateResponse struct {
	Ops             int    `json:"ops"`              // operations executed
	Inserted        int    `json:"inserted"`         // triples asserted by INSERT DATA
	Deleted         int    `json:"deleted"`          // asserted triples retracted
	Total           int    `json:"total"`            // visible closure size afterwards
	EncodingDropped bool   `json:"encoding_dropped"` // a schema delete disabled the hierarchy encoding
	Duration        string `json:"duration"`
	DurationMS      int64  `json:"duration_ms"`
}

func (s *Server) handleUpdate(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var text string
	ct := req.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/sparql-update") {
		body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, 1<<20))
		if err != nil {
			httpError(w, http.StatusBadRequest, "reading body: %v", err)
			return
		}
		text = string(body)
	} else {
		text = req.FormValue("update")
	}
	if strings.TrimSpace(text) == "" {
		httpError(w, http.StatusBadRequest, "missing update parameter")
		return
	}
	// Serialize against /triples and /checkpoint: Update drains the
	// shared staging buffer through a materialization, and deletions
	// must not interleave with another request's stage+report cycle.
	s.deltaMu.Lock()
	start := time.Now()
	st, err := s.r.Update(text)
	elapsed := time.Since(start)
	s.deltaMu.Unlock()
	if err != nil {
		s.updateErrors.Add(1)
		var pe *sparql.ParseError
		if errors.As(err, &pe) {
			writeQueryError(w, err)
		} else {
			httpError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	s.updates.Add(1)
	writeJSON(w, "application/json", updateResponse{
		Ops:             st.Ops,
		Inserted:        st.Inserted,
		Deleted:         st.Deleted,
		Total:           s.r.Size(),
		EncodingDropped: st.EncodingDropped,
		Duration:        elapsed.String(),
		DurationMS:      elapsed.Milliseconds(),
	})
}

// ------------------------------------------------------------ /checkpoint

// checkpointResponse reports a forced checkpoint.
type checkpointResponse struct {
	Generation    uint64 `json:"generation"`
	Triples       int    `json:"triples"`
	SnapshotBytes int64  `json:"snapshot_bytes"`
	Duration      string `json:"duration"`
	DurationMS    int64  `json:"duration_ms"`
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	// Serialize against /triples: Checkpoint drains pending triples
	// through a materialization, and two drains racing would misreport
	// each other's batches.
	s.deltaMu.Lock()
	info, err := s.r.Checkpoint()
	s.deltaMu.Unlock()
	if err == inferray.ErrNotDurable {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.checkpoints.Add(1)
	writeJSON(w, "application/json", checkpointResponse{
		Generation:    info.Generation,
		Triples:       info.Triples,
		SnapshotBytes: info.SnapshotBytes,
		Duration:      info.Duration.String(),
		DurationMS:    info.Duration.Milliseconds(),
	})
}

// ---------------------------------------------------------------- /stats

// statsResponse is the /stats document.
type statsResponse struct {
	Triples         int              `json:"triples"`
	Pending         int              `json:"pending"`
	Fragment        string           `json:"fragment"`
	UptimeSeconds   int64            `json:"uptime_seconds"`
	Queries         int64            `json:"queries"`
	QueryErrors     int64            `json:"query_errors"`
	DeltaBatches    int64            `json:"delta_batches"`
	DeltaTriples    int64            `json:"delta_triples"`
	Updates         int64            `json:"updates"`
	UpdateErrors    int64            `json:"update_errors"`
	LastMaterialize *lastMaterialize `json:"last_materialize,omitempty"`
	Durability      *durabilityInfo  `json:"durability,omitempty"`
	Hierarchy       *hierarchyInfo   `json:"hierarchy,omitempty"`
}

// hierarchyInfo is the hierarchy-encoding section of /stats, present
// only while the interval encoding is active. Triples (above) counts
// the visible closure; materialized_triples the physically stored
// subset, virtual_triples the remainder the interval index answers.
type hierarchyInfo struct {
	MaterializedTriples int `json:"materialized_triples"`
	VirtualTriples      int `json:"virtual_triples"`
	Classes             int `json:"classes"`
	Properties          int `json:"properties"`
	Intervals           int `json:"intervals"`
}

// durabilityInfo is the persistence section of /stats, present only
// when the reasoner has a data dir.
type durabilityInfo struct {
	Dir              string `json:"dir"`
	SyncPolicy       string `json:"sync_policy"`
	Generation       uint64 `json:"generation"`
	WALRecords       int    `json:"wal_records"`
	WALBytes         int64  `json:"wal_bytes"`
	Checkpoints      int64  `json:"checkpoints"` // forced via this server
	LastCheckpointAt string `json:"last_checkpoint_at,omitempty"`
	SnapshotBytes    int64  `json:"snapshot_bytes,omitempty"`
	CheckpointError  string `json:"checkpoint_error,omitempty"`

	RecoveredFromSnapshot bool `json:"recovered_from_snapshot"`
	ReplayedRecords       int  `json:"replayed_records"`
	ReplayedTriples       int  `json:"replayed_triples"`
	TruncatedTail         bool `json:"truncated_tail"`
}

type lastMaterialize struct {
	At          string `json:"at"`
	NewInput    int    `json:"new_input"`
	Inferred    int    `json:"inferred"`
	Total       int    `json:"total"`
	Iterations  int    `json:"iterations"`
	Incremental bool   `json:"incremental"`
	Duration    string `json:"duration"`
}

func (s *Server) handleStats(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	resp := statsResponse{
		Triples:       s.r.Size(),
		Pending:       s.r.Pending(),
		Fragment:      s.r.Fragment().String(),
		UptimeSeconds: int64(time.Since(s.start).Seconds()),
		Queries:       s.queries.Load(),
		QueryErrors:   s.queryErrors.Load(),
		DeltaBatches:  s.deltaBatches.Load(),
		DeltaTriples:  s.deltaTriples.Load(),
		Updates:       s.updates.Load(),
		UpdateErrors:  s.updateErrors.Load(),
	}
	if hs := s.r.HierarchyStats(); hs.Encoded {
		resp.Hierarchy = &hierarchyInfo{
			MaterializedTriples: hs.MaterializedTriples,
			VirtualTriples:      hs.VirtualTriples,
			Classes:             hs.Classes,
			Properties:          hs.Properties,
			Intervals:           hs.Intervals,
		}
	}
	if ds, ok := s.r.DurabilityStats(); ok {
		info := &durabilityInfo{
			Dir:                   ds.Dir,
			SyncPolicy:            ds.SyncPolicy,
			Generation:            ds.Generation,
			WALRecords:            ds.WALRecords,
			WALBytes:              ds.WALBytes,
			Checkpoints:           s.checkpoints.Load(),
			SnapshotBytes:         ds.SnapshotBytes,
			CheckpointError:       ds.CheckpointError,
			RecoveredFromSnapshot: ds.RecoveredFromSnapshot,
			ReplayedRecords:       ds.ReplayedRecords,
			ReplayedTriples:       ds.ReplayedTriples,
			TruncatedTail:         ds.TruncatedTail,
		}
		if !ds.LastCheckpointAt.IsZero() {
			info.LastCheckpointAt = ds.LastCheckpointAt.UTC().Format(time.RFC3339)
		}
		resp.Durability = info
	}
	s.lastMu.Lock()
	if s.hasRun {
		resp.LastMaterialize = &lastMaterialize{
			At:          s.lastAt.UTC().Format(time.RFC3339),
			NewInput:    s.last.InputTriples,
			Inferred:    s.last.InferredTriples,
			Total:       s.last.TotalTriples,
			Iterations:  s.last.Iterations,
			Incremental: s.last.Incremental,
			Duration:    s.last.TotalTime.String(),
		}
	}
	s.lastMu.Unlock()
	writeJSON(w, "application/json", resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, "application/json", map[string]string{"status": "ok"})
}

// ---------------------------------------------------------------- shared

func writeJSON(w http.ResponseWriter, contentType string, v interface{}) {
	w.Header().Set("Content-Type", contentType)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing useful left to do.
		_ = err
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{
		"error": fmt.Sprintf(format, args...),
	})
}
