package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"inferray"
)

func newTestServer(t *testing.T) (*httptest.Server, *inferray.Reasoner) {
	t.Helper()
	r := inferray.New(inferray.WithFragment(inferray.RDFSPlus))
	base := `
<subOrgOf> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://www.w3.org/2002/07/owl#TransitiveProperty> .
<worksFor> <http://www.w3.org/2000/01/rdf-schema#subPropertyOf> <memberOf> .
<DeptCS> <subOrgOf> <Univ0> .
<alice> <worksFor> <DeptCS> .
<alice> <http://www.w3.org/2000/01/rdf-schema#label> "Alice"@en .
`
	if err := r.LoadNTriples(strings.NewReader(base)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Materialize(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(r).Handler())
	t.Cleanup(ts.Close)
	return ts, r
}

func getResults(t *testing.T, ts *httptest.Server, query string) sparqlResults {
	t.Helper()
	resp, err := http.Get(ts.URL + "/query?query=" + url.QueryEscape(query))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/sparql-results+json" {
		t.Fatalf("content type %q", ct)
	}
	var res sparqlResults
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestQueryEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	res := getResults(t, ts, `SELECT ?who WHERE { ?who <memberOf> <DeptCS> }`)
	if len(res.Head.Vars) != 1 || res.Head.Vars[0] != "who" {
		t.Fatalf("head vars = %v", res.Head.Vars)
	}
	if len(res.Results.Bindings) != 1 {
		t.Fatalf("bindings = %v", res.Results.Bindings)
	}
	b := res.Results.Bindings[0]["who"]
	if b.Type != "uri" || b.Value != "alice" {
		t.Fatalf("binding = %+v", b)
	}
}

func TestQueryEndpointLiteralBinding(t *testing.T) {
	ts, _ := newTestServer(t)
	res := getResults(t, ts,
		`SELECT ?name WHERE { <alice> <http://www.w3.org/2000/01/rdf-schema#label> ?name }`)
	if len(res.Results.Bindings) != 1 {
		t.Fatalf("bindings = %v", res.Results.Bindings)
	}
	b := res.Results.Bindings[0]["name"]
	if b.Type != "literal" || b.Value != "Alice" || b.Lang != "en" {
		t.Fatalf("binding = %+v", b)
	}
}

func TestQueryEndpointSelectStarVars(t *testing.T) {
	ts, _ := newTestServer(t)
	res := getResults(t, ts, `SELECT * WHERE { ?who <memberOf> ?org }`)
	if len(res.Head.Vars) != 2 || res.Head.Vars[0] != "who" || res.Head.Vars[1] != "org" {
		t.Fatalf("head vars = %v", res.Head.Vars)
	}
}

func TestQueryEndpointPost(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/query", "application/sparql-query",
		strings.NewReader(`SELECT ?who WHERE { ?who <memberOf> <DeptCS> }`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	for name, q := range map[string]string{
		"missing":            "",
		"syntax":             "SELECT WHERE",
		"unsupported":        "SELECT ?x WHERE { ?x <p> ?y MINUS { ?x <q> ?z } }",
		"unknown projection": "SELECT ?whoo WHERE { ?who <memberOf> ?org }",
	} {
		resp, err := http.Get(ts.URL + "/query?query=" + url.QueryEscape(q))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// Regression: /query used to swallow the parser's detail. A syntax
// error must come back as structured JSON carrying the parser's exact
// line/column/token, and an unsupported construct must name itself.
func TestQueryEndpointStructuredErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	q := "SELECT ?x WHERE {\n  ?x <p> ?y .\n  MINUS { ?x <q> ?z }\n}"
	resp, err := http.Get(ts.URL + "/query?query=" + url.QueryEscape(q))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var qe queryError
	if err := json.NewDecoder(resp.Body).Decode(&qe); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(qe.Error, "MINUS is not supported") {
		t.Fatalf("error message lost the construct: %+v", qe)
	}
	if qe.Line != 3 || qe.Column != 3 || qe.Token != "MINUS" {
		t.Fatalf("position info = %+v, want line 3 col 3 token MINUS", qe)
	}

	// Non-parse errors (unknown projection) stay structured but carry
	// no position.
	resp2, err := http.Get(ts.URL + "/query?query=" + url.QueryEscape("SELECT ?whoo WHERE { ?who <memberOf> ?org }"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var qe2 queryError
	if err := json.NewDecoder(resp2.Body).Decode(&qe2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(qe2.Error, "whoo") || qe2.Line != 0 {
		t.Fatalf("projection error = %+v", qe2)
	}
}

func TestQueryEndpointFilterOrderByDistinct(t *testing.T) {
	ts, _ := newTestServer(t)
	res := getResults(t, ts,
		`SELECT DISTINCT ?org WHERE { ?x <subOrgOf> ?org . FILTER(?org != <nowhere>) } ORDER BY ?org`)
	if len(res.Results.Bindings) != 1 || res.Results.Bindings[0]["org"].Value != "Univ0" {
		t.Fatalf("bindings = %v", res.Results.Bindings)
	}
}

func TestQueryEndpointAsk(t *testing.T) {
	ts, _ := newTestServer(t)
	for q, want := range map[string]bool{
		`ASK { <alice> <memberOf> <DeptCS> }`: true,
		`ASK { <alice> <memberOf> <Univ0> }`:  false,
	} {
		resp, err := http.Get(ts.URL + "/query?query=" + url.QueryEscape(q))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", q, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/sparql-results+json" {
			t.Fatalf("ask content type %q", ct)
		}
		var doc struct {
			Boolean *bool `json:"boolean"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if doc.Boolean == nil || *doc.Boolean != want {
			t.Fatalf("%s: boolean = %v, want %t", q, doc.Boolean, want)
		}
	}
}

// The limit query parameter caps rows on top of the query's own LIMIT,
// and a bad value is a 400.
func TestQueryEndpointLimitParam(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/query?limit=2&query=" + url.QueryEscape(`SELECT * WHERE { ?s ?p ?o }`))
	if err != nil {
		t.Fatal(err)
	}
	var res sparqlResults
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(res.Results.Bindings) != 2 {
		t.Fatalf("limit=2 delivered %d bindings", len(res.Results.Bindings))
	}

	bad, err := http.Get(ts.URL + "/query?limit=-1&query=" + url.QueryEscape(`SELECT * WHERE { ?s ?p ?o }`))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("limit=-1 status %d, want 400", bad.StatusCode)
	}
}

// A query with zero solutions still streams a complete, decodable
// document with the head present.
func TestQueryEndpointEmptyResultDocument(t *testing.T) {
	ts, _ := newTestServer(t)
	res := getResults(t, ts, `SELECT ?who WHERE { ?who <memberOf> <NoSuchOrg> }`)
	if len(res.Head.Vars) != 1 || res.Head.Vars[0] != "who" {
		t.Fatalf("head vars = %v", res.Head.Vars)
	}
	if len(res.Results.Bindings) != 0 {
		t.Fatalf("bindings = %v", res.Results.Bindings)
	}
}

func TestTriplesDeltaExtendsClosureIncrementally(t *testing.T) {
	ts, r := newTestServer(t)
	before := r.Size()

	// bob joins a group nested under DeptCS: the closure must extend to
	// bob being a member of GroupB and (via rule chains) of nothing less.
	delta := `
<bob> <worksFor> <GroupB> .
<GroupB> <subOrgOf> <DeptCS> .
`
	resp, err := http.Post(ts.URL+"/triples", "application/n-triples", strings.NewReader(delta))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var dr deltaResponse
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	if dr.Staged != 2 || !dr.Incremental || dr.Total <= before {
		t.Fatalf("delta response = %+v (before=%d)", dr, before)
	}

	// The new fact and its inferences are queryable.
	if !r.Holds("<bob>", "<memberOf>", "<GroupB>") {
		t.Fatal("delta inference missing")
	}
	if !r.Holds("<GroupB>", "<subOrgOf>", "<Univ0>") {
		t.Fatal("transitive inference over delta missing")
	}
	res := getResults(t, ts, `SELECT ?org WHERE { <GroupB> <subOrgOf> ?org }`)
	if len(res.Results.Bindings) != 2 { // DeptCS and Univ0
		t.Fatalf("bindings = %v", res.Results.Bindings)
	}
}

func TestTriplesRejectsBadInput(t *testing.T) {
	ts, r := newTestServer(t)
	before := r.Size()
	resp, err := http.Post(ts.URL+"/triples", "application/n-triples",
		strings.NewReader("this is not ntriples\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if r.Size() != before || r.Pending() != 0 {
		t.Fatal("bad document partially staged")
	}
}

func TestStatsAndHealthz(t *testing.T) {
	ts, r := newTestServer(t)
	getResults(t, ts, `SELECT ?who WHERE { ?who <memberOf> <DeptCS> }`)

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Triples == 0 || st.Queries != 1 || st.Fragment != "rdfs-plus" {
		t.Fatalf("stats = %+v", st)
	}
	// The fixture has a subPropertyOf edge, so the hierarchy interval
	// encoding is active and /stats must carry its section.
	if st.Hierarchy == nil {
		t.Fatal("/stats lacks hierarchy section with encoding active")
	}
	if st.Hierarchy.Properties < 2 || st.Hierarchy.Intervals == 0 {
		t.Fatalf("hierarchy stats = %+v", st.Hierarchy)
	}
	if got := st.Hierarchy.MaterializedTriples + st.Hierarchy.VirtualTriples; got != r.Size() {
		t.Fatalf("materialized+virtual = %d, want Size() = %d", got, r.Size())
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", hresp.StatusCode)
	}
}

// TestConcurrentQueriesAndDeltas is the end-to-end race check at the
// HTTP layer: SELECTs stream in while deltas re-materialize the store.
func TestConcurrentQueriesAndDeltas(t *testing.T) {
	ts, _ := newTestServer(t)
	const readers = 4
	const perReader = 25

	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perReader; j++ {
				res := getResults(t, ts, `SELECT ?who ?org WHERE { ?who <memberOf> ?org }`)
				if len(res.Results.Bindings) == 0 {
					t.Error("no bindings")
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 10; j++ {
			delta := fmt.Sprintf("<worker%d> <worksFor> <DeptCS> .\n", j)
			resp, err := http.Post(ts.URL+"/triples", "application/n-triples", strings.NewReader(delta))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("delta status %d", resp.StatusCode)
				return
			}
		}
	}()
	wg.Wait()

	res := getResults(t, ts, `SELECT ?who WHERE { ?who <memberOf> <DeptCS> }`)
	if len(res.Results.Bindings) != 11 { // alice + 10 workers
		t.Fatalf("final bindings = %d, want 11", len(res.Results.Bindings))
	}
}

// TestGracefulShutdown drives Serve directly: cancellation must stop
// the listener and return nil.
func TestGracefulShutdown(t *testing.T) {
	r := inferray.New()
	if err := r.Add("<a>", inferray.Type, "<C>"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Materialize(); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- New(r).Serve(ctx, ln) }()

	resp, err := http.Get("http://" + ln.Addr().String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not shut down")
	}
}

// newDurableTestServer serves a durable reasoner from dir. The reasoner
// is returned so tests can crash it (abandon without Close) or close it.
func newDurableTestServer(t *testing.T, dir string) (*httptest.Server, *inferray.Reasoner) {
	t.Helper()
	r, err := inferray.Open(
		inferray.WithFragment(inferray.RDFSDefault),
		inferray.WithDurability(dir, inferray.DurabilityOptions{Sync: "always"}),
	)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(r).Handler())
	t.Cleanup(ts.Close)
	return ts, r
}

func postTriples(t *testing.T, ts *httptest.Server, doc string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/triples", "application/n-triples", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /triples status %d", resp.StatusCode)
	}
}

// POST /checkpoint on a durable server writes an image, truncates the
// WAL, and /stats reflects all of it; a server restart over the same
// dir (after a simulated crash) serves the identical closure.
func TestCheckpointEndpointAndDurableStats(t *testing.T) {
	dir := t.TempDir()
	ts, r := newDurableTestServer(t, dir)
	postTriples(t, ts, "<a> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <b> .\n<b> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <c> .\n")

	resp, err := http.Post(ts.URL+"/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var cp checkpointResponse
	if err := json.NewDecoder(resp.Body).Decode(&cp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || cp.Generation != 1 || cp.SnapshotBytes == 0 {
		t.Fatalf("checkpoint response %d: %+v", resp.StatusCode, cp)
	}

	postTriples(t, ts, "<x> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <a> .\n")

	statsResp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	statsResp.Body.Close()
	if st.Durability == nil {
		t.Fatal("/stats lacks durability section on a durable reasoner")
	}
	if st.Durability.Generation != 1 || st.Durability.WALRecords != 1 || st.Durability.Checkpoints != 1 {
		t.Fatalf("durability stats: %+v", st.Durability)
	}
	if st.Durability.SyncPolicy != "always" || st.Durability.Dir != dir {
		t.Fatalf("durability identity: %+v", st.Durability)
	}

	want := r.Size()
	ts.Close() // stop HTTP; the reasoner "crashes" (no Close)

	ts2, r2 := newDurableTestServer(t, dir)
	if r2.Size() != want {
		t.Fatalf("restarted server holds %d triples, want %d", r2.Size(), want)
	}
	res := getResults(t, ts2, `SELECT ?t WHERE { <x> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> ?t }`)
	if len(res.Results.Bindings) != 3 { // a, b, c
		t.Fatalf("recovered closure answers %d types, want 3", len(res.Results.Bindings))
	}
	var st2 statsResponse
	sr, err := http.Get(ts2.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(sr.Body).Decode(&st2); err != nil {
		t.Fatal(err)
	}
	sr.Body.Close()
	if st2.Durability == nil || !st2.Durability.RecoveredFromSnapshot || st2.Durability.ReplayedRecords != 1 {
		t.Fatalf("recovery stats after restart: %+v", st2.Durability)
	}
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}
}

// /checkpoint on an in-memory reasoner is a 409, and /stats omits the
// durability section.
func TestCheckpointEndpointNotDurable(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("checkpoint on in-memory reasoner: status %d", resp.StatusCode)
	}
	sr, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(sr.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Durability != nil {
		t.Fatal("/stats grew a durability section on an in-memory reasoner")
	}
	if g, err := http.Get(ts.URL + "/checkpoint"); err == nil {
		if g.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /checkpoint status %d", g.StatusCode)
		}
		g.Body.Close()
	}
}

// Unbound cells — UNION branches with disjoint variables, unmatched
// OPTIONAL blocks — must be *omitted* from the results-JSON binding
// objects, never serialized as empty strings (the results-JSON spec's
// representation of SPARQL's unbound).
func TestQueryEndpointOmitsUnboundCells(t *testing.T) {
	ts, _ := newTestServer(t)

	// The raw body, not the decoded struct: an empty-string cell and an
	// omitted cell decode identically into Go maps.
	get := func(q string) string {
		t.Helper()
		resp, err := http.Get(ts.URL + "/query?query=" + url.QueryEscape(q))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf strings.Builder
		if _, err := io.Copy(&buf, resp.Body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, buf.String())
		}
		return buf.String()
	}

	// UNION with disjoint variables: the label-branch row has no ?org.
	body := get(`SELECT ?who ?org ?name WHERE {
  { ?who <memberOf> ?org } UNION { ?who <http://www.w3.org/2000/01/rdf-schema#label> ?name }
} ORDER BY ?who`)
	if strings.Contains(body, `"org":{"type":"literal","value":""}`) ||
		strings.Contains(body, `"value":""`) {
		t.Fatalf("unbound cell serialized as empty string: %s", body)
	}
	var res sparqlResults
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	sawWithout, sawWith := false, false
	for _, b := range res.Results.Bindings {
		if _, ok := b["org"]; ok {
			sawWith = true
		} else {
			sawWithout = true
		}
	}
	if !sawWith || !sawWithout {
		t.Fatalf("expected a mix of bound and omitted ?org cells: %s", body)
	}

	// Unmatched OPTIONAL: same contract.
	body = get(`SELECT ?who ?org ?name WHERE {
  ?who <memberOf> ?org OPTIONAL { ?who <nickname> ?name }
}`)
	var res2 sparqlResults
	if err := json.Unmarshal([]byte(body), &res2); err != nil {
		t.Fatal(err)
	}
	if len(res2.Results.Bindings) == 0 {
		t.Fatalf("no bindings: %s", body)
	}
	for _, b := range res2.Results.Bindings {
		if _, ok := b["name"]; ok {
			t.Fatalf("unmatched OPTIONAL cell must be omitted: %s", body)
		}
	}
}

// An aggregate query through the endpoint: typed integer literals in
// the bindings, and the server's limit= cap still applies.
func TestQueryEndpointAggregates(t *testing.T) {
	ts, _ := newTestServer(t)
	res := getResults(t, ts,
		`SELECT ?org (COUNT(*) AS ?n) WHERE { ?who <memberOf> ?org } GROUP BY ?org ORDER BY ?org`)
	if len(res.Results.Bindings) != 1 {
		t.Fatalf("bindings = %v", res.Results.Bindings)
	}
	n := res.Results.Bindings[0]["n"]
	if n.Type != "literal" || n.Value != "1" ||
		n.Datatype != "http://www.w3.org/2001/XMLSchema#integer" {
		t.Fatalf("count binding = %+v", n)
	}
}

// TestUpdateEndpoint: POST /update runs SPARQL UPDATE text against the
// reasoner — raw body and form variants — and subsequent queries see
// the maintained closure.
func TestUpdateEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)

	// Raw application/sparql-update body: bob joins DeptCS; the
	// subPropertyOf rule must fire on the inserted triple.
	resp, err := http.Post(ts.URL+"/update", "application/sparql-update",
		strings.NewReader(`INSERT DATA { <bob> <worksFor> <DeptCS> }`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var ur updateResponse
	if err := json.NewDecoder(resp.Body).Decode(&ur); err != nil {
		t.Fatal(err)
	}
	if ur.Ops != 1 || ur.Inserted != 1 || ur.Deleted != 0 {
		t.Fatalf("response = %+v", ur)
	}
	res := getResults(t, ts, `SELECT ?who WHERE { ?who <memberOf> <DeptCS> } ORDER BY ?who`)
	if len(res.Results.Bindings) != 2 {
		t.Fatalf("bindings = %v", res.Results.Bindings)
	}

	// Form-encoded variant: DELETE WHERE retracts alice's assertion,
	// and delete-rederive takes her derived memberOf with it.
	resp2, err := http.PostForm(ts.URL+"/update", url.Values{
		"update": {`DELETE WHERE { <alice> <worksFor> ?org }`},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp2.Body)
		t.Fatalf("status %d: %s", resp2.StatusCode, body)
	}
	var ur2 updateResponse
	if err := json.NewDecoder(resp2.Body).Decode(&ur2); err != nil {
		t.Fatal(err)
	}
	if ur2.Deleted != 1 {
		t.Fatalf("response = %+v", ur2)
	}
	res = getResults(t, ts, `SELECT ?who WHERE { ?who <memberOf> <DeptCS> }`)
	if len(res.Results.Bindings) != 1 || res.Results.Bindings[0]["who"].Value != "bob" {
		t.Fatalf("bindings = %v", res.Results.Bindings)
	}

	// /stats counts the updates.
	statsResp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Updates != 2 || st.UpdateErrors != 0 {
		t.Fatalf("stats updates = %d / errors = %d, want 2 / 0", st.Updates, st.UpdateErrors)
	}
}

// TestUpdateEndpointErrors: parse failures come back as 400 with the
// parser's position, wrong methods as 405, and the error counter moves.
func TestUpdateEndpointErrors(t *testing.T) {
	ts, _ := newTestServer(t)

	resp, err := http.Get(ts.URL + "/update")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d, want 405", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/update", "application/sparql-update", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty body status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/update", "application/sparql-update",
		strings.NewReader("INSERT DATA {\n  ?x <p> <o>\n}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var qe queryError
	if err := json.NewDecoder(resp.Body).Decode(&qe); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(qe.Error, "variables are not allowed in INSERT DATA") {
		t.Fatalf("error = %+v", qe)
	}
	if qe.Line != 2 || qe.Token != "?x" {
		t.Fatalf("position = %+v, want line 2 token ?x", qe)
	}

	statsResp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.UpdateErrors == 0 {
		t.Fatal("/stats update_errors did not move")
	}
}
