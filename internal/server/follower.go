package server

// Follower-side replication: an in-memory reasoner bootstraps from the
// leader's newest snapshot image, then tails GET /wal and applies each
// shipped record through Reasoner.ApplyReplicated — the identical
// incremental path the leader ran when it logged the record, so a
// caught-up follower holds the byte-identical closure at the same store
// generation. The loop retries with exponential backoff on connection
// failures and re-bootstraps from the image when the leader answers 410
// Gone (a checkpoint pruned the follower's position, or the leader lost
// an unsynced tail in a crash).

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"inferray"
	"inferray/internal/metrics"
	"inferray/internal/rdf"
	"inferray/internal/wal"
)

// FollowerOptions configures a replication tailer.
type FollowerOptions struct {
	// LeaderURL is the leader's base URL (e.g. http://leader:8080).
	LeaderURL string
	// RetryMin/RetryMax bound the reconnect backoff (defaults 100ms/5s).
	RetryMin time.Duration
	RetryMax time.Duration
	// WaitSeconds is the per-request /wal long-poll duration the
	// follower asks for (default 20, max 60).
	WaitSeconds int
	// Client overrides the HTTP client (default: no overall timeout —
	// requests are bounded by the long poll and canceled by Run's
	// context).
	Client *http.Client
}

func (o FollowerOptions) withDefaults() FollowerOptions {
	if o.RetryMin <= 0 {
		o.RetryMin = 100 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 5 * time.Second
	}
	if o.WaitSeconds <= 0 {
		o.WaitSeconds = 20
	}
	if o.WaitSeconds > 60 {
		o.WaitSeconds = 60
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	return o
}

// Follower replicates a leader into the server's reasoner. Create one
// with Server.NewFollower, start it with Run, and gate readiness on
// Ready: the channel closes after the first successful bootstrap, when
// the follower has a closure worth serving.
type Follower struct {
	r    *inferray.Reasoner
	opts FollowerOptions

	applied     *metrics.CounterVec // by op
	received    *metrics.Counter
	reconnects  *metrics.Counter
	bootstraps  *metrics.Counter
	truncations *metrics.Counter
	lagRecords  *metrics.Gauge
	lagGens     *metrics.Gauge
	connected   *metrics.Gauge

	ready     chan struct{}
	readyOnce sync.Once

	mu           sync.Mutex
	pos          inferray.WALPosition
	leaderTail   inferray.WALPosition
	bootstrapped bool
	lastErr      string
}

// NewFollower attaches a replication tailer to the server: the server's
// reasoner becomes the replica (it must be in-memory — a durable
// follower would fork its data directory from the replicated history),
// the follower's metrics land in the server's registry, and /stats
// grows a replication section. The server should be configured
// ReadOnly with LeaderURL so writers are pointed at the leader.
func (s *Server) NewFollower(opts FollowerOptions) (*Follower, error) {
	if opts.LeaderURL == "" {
		return nil, fmt.Errorf("server: follower needs a leader URL")
	}
	if s.r.Durable() {
		return nil, fmt.Errorf("server: a durable reasoner cannot follow a leader (its own data dir would fork from the replicated history)")
	}
	if s.follower != nil {
		return nil, fmt.Errorf("server: follower already attached")
	}
	f := &Follower{
		r:    s.r,
		opts: opts.withDefaults(),
		applied: s.reg.CounterVec("inferray_replication_applied_records_total",
			"Replicated WAL records applied, by op kind.", "op"),
		received: s.reg.Counter("inferray_replication_received_bytes_total",
			"Replication bytes received from the leader (WAL frames and snapshot images)."),
		reconnects: s.reg.Counter("inferray_replication_reconnects_total",
			"Replication connection failures followed by a backoff and retry."),
		bootstraps: s.reg.Counter("inferray_replication_bootstraps_total",
			"Snapshot bootstraps completed (the first one plus every re-bootstrap)."),
		truncations: s.reg.Counter("inferray_replication_truncations_total",
			"410 Gone answers from the leader: the follower's position was pruned and a re-bootstrap was forced."),
		lagRecords: s.reg.Gauge("inferray_replication_lag_records",
			"Records between the follower's applied position and the leader tail (same generation; 0 across a pending rotation)."),
		lagGens: s.reg.Gauge("inferray_replication_lag_generations",
			"Checkpoint generations between the follower's position and the leader tail."),
		connected: s.reg.Gauge("inferray_replication_connected",
			"1 while the follower's last leader exchange succeeded, 0 while retrying."),
		ready: make(chan struct{}),
	}
	s.follower = f
	return f, nil
}

// Ready is closed after the first successful bootstrap — the point
// where the follower holds a closure worth serving reads from.
func (f *Follower) Ready() <-chan struct{} { return f.ready }

// FollowerStats is the replication section of /stats on a follower.
type FollowerStats struct {
	Leader          string `json:"leader"`
	WALGeneration   uint64 `json:"wal_generation"`
	WALRecords      int    `json:"wal_records"`
	LeaderTailGen   uint64 `json:"leader_tail_generation"`
	LeaderTailRecs  int    `json:"leader_tail_records"`
	LagRecords      int64  `json:"lag_records"`
	LagGenerations  int64  `json:"lag_generations"`
	Connected       bool   `json:"connected"`
	Bootstraps      uint64 `json:"bootstraps"`
	Reconnects      uint64 `json:"reconnects"`
	Truncations     uint64 `json:"truncations"`
	RecordsApplied  uint64 `json:"records_applied"`
	BytesReceived   uint64 `json:"bytes_received"`
	StoreGeneration uint64 `json:"store_generation"`
	LastError       string `json:"last_error,omitempty"`
}

// Stats snapshots the follower's replication state.
func (f *Follower) Stats() FollowerStats {
	f.mu.Lock()
	pos, tail, lastErr := f.pos, f.leaderTail, f.lastErr
	f.mu.Unlock()
	var appliedTotal uint64
	f.applied.Each(func(_ []string, c *metrics.Counter) { appliedTotal += c.Value() })
	return FollowerStats{
		Leader:          f.opts.LeaderURL,
		WALGeneration:   pos.Generation,
		WALRecords:      pos.Records,
		LeaderTailGen:   tail.Generation,
		LeaderTailRecs:  tail.Records,
		LagRecords:      f.lagRecords.Value(),
		LagGenerations:  f.lagGens.Value(),
		Connected:       f.connected.Value() == 1,
		Bootstraps:      f.bootstraps.Value(),
		Reconnects:      f.reconnects.Value(),
		Truncations:     f.truncations.Value(),
		RecordsApplied:  appliedTotal,
		BytesReceived:   f.received.Value(),
		StoreGeneration: f.r.Generation(),
		LastError:       lastErr,
	}
}

// Run drives the replication loop until ctx is canceled: bootstrap if
// needed, then tail the WAL one long-poll request at a time, backing
// off exponentially after failures. It only returns ctx.Err().
func (f *Follower) Run(ctx context.Context) error {
	backoff := f.opts.RetryMin
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		err := f.step(ctx)
		if err == nil {
			f.connected.Set(1)
			f.setErr(nil)
			backoff = f.opts.RetryMin
			continue
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		f.connected.Set(0)
		f.setErr(err)
		f.reconnects.Inc()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > f.opts.RetryMax {
			backoff = f.opts.RetryMax
		}
	}
}

func (f *Follower) setErr(err error) {
	f.mu.Lock()
	if err == nil {
		f.lastErr = ""
	} else {
		f.lastErr = err.Error()
	}
	f.mu.Unlock()
}

// step runs one replication exchange: a bootstrap when the follower has
// no (valid) base state, one /wal long poll otherwise.
func (f *Follower) step(ctx context.Context) error {
	f.mu.Lock()
	booted := f.bootstrapped
	f.mu.Unlock()
	if !booted {
		if err := f.bootstrap(ctx); err != nil {
			return err
		}
		f.readyOnce.Do(func() { close(f.ready) })
	}
	return f.tailOnce(ctx)
}

// bootstrap downloads /snapshot/latest and installs it as the replica's
// entire state. A leader with no image yet (fresh directory) answers
// 404 with the generation header; the follower starts from its current
// (usually empty) state and streams from (gen, 0) — every record since
// the beginning is still in that log.
func (f *Follower) bootstrap(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.opts.LeaderURL+"/snapshot/latest", nil)
	if err != nil {
		return err
	}
	resp, err := f.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusNotFound:
		gen, err := strconv.ParseUint(resp.Header.Get(hdrWALGen), 10, 64)
		if err != nil {
			return fmt.Errorf("follower: leader has no snapshot and sent no generation header")
		}
		f.finishBootstrap(inferray.WALPosition{Generation: gen})
		return nil
	case http.StatusOK:
	default:
		return fmt.Errorf("follower: GET /snapshot/latest: %s", resp.Status)
	}
	tmp, err := os.CreateTemp("", "inferray-bootstrap-*.img")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	n, err := io.Copy(tmp, resp.Body)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("follower: downloading snapshot: %w", err)
	}
	f.received.Add(uint64(n))
	pos, err := f.r.RestoreImage(tmp.Name())
	if err != nil {
		return fmt.Errorf("follower: installing snapshot: %w", err)
	}
	f.finishBootstrap(pos)
	return nil
}

func (f *Follower) finishBootstrap(pos inferray.WALPosition) {
	f.mu.Lock()
	f.pos = pos
	f.bootstrapped = true
	f.mu.Unlock()
	f.bootstraps.Inc()
}

// tailOnce issues one long-poll /wal request and applies every frame it
// returns. A clean response end is success (the caller immediately
// re-requests from the advanced position); 410 Gone schedules a
// re-bootstrap.
func (f *Follower) tailOnce(ctx context.Context) error {
	f.mu.Lock()
	pos := f.pos
	f.mu.Unlock()
	url := fmt.Sprintf("%s/wal?from=%d&records=%d&wait=%d",
		f.opts.LeaderURL, pos.Generation, pos.Records, f.opts.WaitSeconds)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := f.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusGone:
		// The leader checkpointed past us (or lost a tail we had
		// applied): the missing records live only inside the image now.
		f.truncations.Inc()
		f.mu.Lock()
		f.bootstrapped = false
		f.mu.Unlock()
		return nil
	case http.StatusOK:
	default:
		return fmt.Errorf("follower: GET /wal: %s", resp.Status)
	}
	// Adopt the resolved start position: a fully caught-up follower is
	// transparently advanced across a checkpoint rotation.
	if gen, err := strconv.ParseUint(resp.Header.Get(hdrWALGen), 10, 64); err == nil {
		recs, rerr := strconv.Atoi(resp.Header.Get(hdrWALRecords))
		if rerr == nil && (gen != pos.Generation || recs != pos.Records) {
			pos = inferray.WALPosition{Generation: gen, Records: recs}
		}
	}
	f.noteTail(resp.Header, pos)
	// The poll is live from here on; don't wait for the window to close
	// before reporting it.
	f.connected.Set(1)

	fr := wal.NewFrameReader(resp.Body)
	for {
		kind, payload, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// Cut mid-frame: apply nothing further, reconnect from the
			// last applied position. Everything before the cut was
			// CRC-verified and applied.
			f.setPos(pos)
			return fmt.Errorf("follower: wal stream: %w", err)
		}
		batch, err := parseBatch(payload)
		if err != nil {
			f.setPos(pos)
			return fmt.Errorf("follower: record %s: %w", pos, err)
		}
		if err := f.r.ApplyReplicated(kind, batch); err != nil {
			f.setPos(pos)
			return fmt.Errorf("follower: applying record %s: %w", pos, err)
		}
		pos.Records++
		f.setPos(pos)
		f.applied.With(opName(kind)).Inc()
		f.received.Add(uint64(len(payload) + 9)) // frame = header(8) + kind(1) + payload
		f.updateLag(pos)
	}
	f.setPos(pos)
	f.updateLag(pos)
	return nil
}

func (f *Follower) setPos(pos inferray.WALPosition) {
	f.mu.Lock()
	f.pos = pos
	f.mu.Unlock()
}

// noteTail records the leader tail advertised on a /wal response and
// refreshes the lag gauges against it.
func (f *Follower) noteTail(h http.Header, pos inferray.WALPosition) {
	gen, err := strconv.ParseUint(h.Get(hdrWALTailGen), 10, 64)
	if err != nil {
		return
	}
	recs, err := strconv.Atoi(h.Get(hdrWALTailRecords))
	if err != nil {
		return
	}
	f.mu.Lock()
	f.leaderTail = inferray.WALPosition{Generation: gen, Records: recs}
	f.mu.Unlock()
	f.updateLag(pos)
}

// updateLag refreshes the lag gauges: generations behind the advertised
// leader tail, and records behind it when on the same generation (a
// pending rotation reports 0 record lag — the next exchange crosses it
// and re-measures).
func (f *Follower) updateLag(pos inferray.WALPosition) {
	f.mu.Lock()
	tail := f.leaderTail
	f.mu.Unlock()
	if tail.Generation >= pos.Generation {
		f.lagGens.Set(int64(tail.Generation - pos.Generation))
	}
	if tail.Generation == pos.Generation && tail.Records >= pos.Records {
		f.lagRecords.Set(int64(tail.Records - pos.Records))
	} else {
		f.lagRecords.Set(0)
	}
}

// parseBatch decodes one record payload (an N-Triples document).
func parseBatch(payload []byte) ([]inferray.Triple, error) {
	var batch []inferray.Triple
	err := rdf.ReadNTriples(bytes.NewReader(payload), func(t rdf.Triple) error {
		batch = append(batch, t)
		return nil
	})
	return batch, err
}

// opName labels a record kind for the applied-records metric.
func opName(kind inferray.WALOp) string {
	if kind == inferray.WALDelete {
		return "delete"
	}
	return "add"
}
