package store

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"inferray/internal/sorting"
)

func TestTableNormalizeSortsAndDedups(t *testing.T) {
	var tab Table
	tab.Append(5, 1)
	tab.Append(3, 2)
	tab.Append(5, 1)
	tab.Append(3, 1)
	tab.Normalize()
	want := []uint64{3, 1, 3, 2, 5, 1}
	if !reflect.DeepEqual(tab.Pairs(), want) {
		t.Fatalf("got %v want %v", tab.Pairs(), want)
	}
	if tab.Size() != 3 {
		t.Fatalf("size %d want 3", tab.Size())
	}
}

func TestTablePanicsOnDirtyRead(t *testing.T) {
	var tab Table
	tab.Append(1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Pairs on a dirty table must panic")
		}
	}()
	tab.Pairs()
}

func TestTableOSViewLazyAndInvalidated(t *testing.T) {
	var tab Table
	tab.AppendPairs([]uint64{1, 9, 2, 8, 3, 7})
	tab.Normalize()
	os := tab.OS()
	want := []uint64{7, 3, 8, 2, 9, 1}
	if !reflect.DeepEqual(os, want) {
		t.Fatalf("OS view %v want %v", os, want)
	}
	// Same backing array until invalidated.
	if &tab.OS()[0] != &os[0] {
		t.Fatal("OS view must be cached")
	}
	tab.Append(0, 99)
	tab.Normalize()
	os2 := tab.OS()
	if len(os2) != 8 || os2[len(os2)-2] != 99 {
		t.Fatalf("OS cache not rebuilt after mutation: %v", os2)
	}
}

func TestTableRuns(t *testing.T) {
	var tab Table
	tab.AppendPairs([]uint64{1, 5, 2, 1, 2, 4, 2, 9, 7, 0})
	tab.Normalize()
	lo, hi := tab.SubjectRun(2)
	if lo != 1 || hi != 4 {
		t.Fatalf("SubjectRun(2) = [%d,%d), want [1,4)", lo, hi)
	}
	lo, hi = tab.SubjectRun(3)
	if lo != hi {
		t.Fatal("absent subject must give empty run")
	}
	lo, hi = tab.ObjectRun(4)
	if hi-lo != 1 {
		t.Fatalf("ObjectRun(4) width %d, want 1", hi-lo)
	}
	if !tab.Contains(2, 4) || tab.Contains(2, 5) || tab.Contains(9, 9) {
		t.Fatal("Contains wrong")
	}
}

func TestStoreEnsureGrowAndSize(t *testing.T) {
	st := New(2)
	st.Add(0, 1, 2)
	st.Add(5, 3, 4) // beyond initial size: must grow
	st.Normalize()
	if st.NumSlots() < 6 {
		t.Fatalf("slots %d, want >= 6", st.NumSlots())
	}
	if st.Size() != 2 {
		t.Fatalf("size %d, want 2", st.Size())
	}
	if st.Table(1) != nil {
		t.Fatal("untouched slot must stay nil")
	}
	if !st.Contains(5, 3, 4) || st.Contains(5, 4, 3) {
		t.Fatal("Contains wrong")
	}
}

func TestStoreForEachOrder(t *testing.T) {
	st := New(3)
	st.Add(2, 10, 11)
	st.Add(0, 1, 2)
	st.Normalize()
	var got [][3]uint64
	st.ForEach(func(pidx int, s, o uint64) bool {
		got = append(got, [3]uint64{uint64(pidx), s, o})
		return true
	})
	want := [][3]uint64{{0, 1, 2}, {2, 10, 11}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestStoreClone(t *testing.T) {
	st := New(1)
	st.Add(0, 1, 2)
	st.Normalize()
	c := st.Clone()
	c.Add(0, 3, 4)
	c.Normalize()
	if st.Size() != 1 || c.Size() != 2 {
		t.Fatal("clone aliases original")
	}
}

// TestMergeRoundFigure5 replays the exact example of Figure 5:
// main = (1,1)(1,2)(1,8)(9,7) [as one property table's s,o pairs],
// inferred = (1,2)(1,6)(4,3)(3,7)(1,2); after the round main must be the
// union and new must hold exactly the pairs not previously in main.
func TestMergeRoundFigure5(t *testing.T) {
	main := New(1)
	main.Ensure(0).AppendPairs([]uint64{1, 1, 1, 2, 1, 8, 9, 7})
	main.Normalize()

	inferred := New(1)
	inferred.Ensure(0).AppendPairs([]uint64{1, 2, 4, 3, 1, 6, 3, 7, 1, 2})

	delta, changed := MergeRound(main, inferred, false)

	wantMain := []uint64{1, 1, 1, 2, 1, 6, 1, 8, 3, 7, 4, 3, 9, 7}
	if !reflect.DeepEqual(main.Table(0).Pairs(), wantMain) {
		t.Fatalf("main after merge = %v, want %v", main.Table(0).Pairs(), wantMain)
	}
	wantNew := []uint64{1, 6, 3, 7, 4, 3}
	if !reflect.DeepEqual(delta.Table(0).Pairs(), wantNew) {
		t.Fatalf("new = %v, want %v", delta.Table(0).Pairs(), wantNew)
	}
	if !reflect.DeepEqual(changed, []int{0}) {
		t.Fatalf("changed set = %v, want [0]", changed)
	}
}

func TestMergeRoundEmptyDelta(t *testing.T) {
	main := New(1)
	main.Ensure(0).AppendPairs([]uint64{1, 2})
	main.Normalize()
	inferred := New(1)
	inferred.Ensure(0).AppendPairs([]uint64{1, 2}) // pure duplicate
	delta, changed := MergeRound(main, inferred, false)
	if delta.Size() != 0 {
		t.Fatalf("delta size %d, want 0", delta.Size())
	}
	if main.Size() != 1 {
		t.Fatal("main must be unchanged")
	}
	if len(changed) != 0 {
		t.Fatalf("pure-duplicate merge reported changed tables: %v", changed)
	}
}

// TestMergeRoundQuick: for random main/inferred contents, merging must
// equal the map-based oracle, sequentially and in parallel.
func TestMergeRoundQuick(t *testing.T) {
	f := func(seed int64, parallel bool) bool {
		rng := rand.New(rand.NewSource(seed))
		nProps := 1 + rng.Intn(4)
		main := New(nProps)
		inferred := New(nProps)
		oracleMain := map[[3]uint64]bool{}
		for i := 0; i < rng.Intn(60); i++ {
			p, s, o := rng.Intn(nProps), uint64(rng.Intn(9)), uint64(rng.Intn(9))
			main.Add(p, s, o)
			oracleMain[[3]uint64{uint64(p), s, o}] = true
		}
		main.Normalize()
		oracleNew := map[[3]uint64]bool{}
		for i := 0; i < rng.Intn(60); i++ {
			p, s, o := rng.Intn(nProps), uint64(rng.Intn(9)), uint64(rng.Intn(9))
			inferred.Add(p, s, o)
			k := [3]uint64{uint64(p), s, o}
			if !oracleMain[k] {
				oracleNew[k] = true
			}
		}
		delta, changed := MergeRound(main, inferred, parallel)

		gotNew := map[[3]uint64]bool{}
		delta.ForEach(func(pidx int, s, o uint64) bool {
			gotNew[[3]uint64{uint64(pidx), s, o}] = true
			return true
		})
		if !reflect.DeepEqual(gotNew, oracleNew) {
			return false
		}
		// The changed set must be exactly the tables with fresh pairs.
		wantChanged := map[int]bool{}
		for k := range oracleNew {
			wantChanged[int(k[0])] = true
		}
		if len(changed) != len(wantChanged) {
			return false
		}
		for i, p := range changed {
			if !wantChanged[p] {
				return false
			}
			if i > 0 && changed[i-1] >= p {
				return false // must be sorted and unique
			}
		}
		// Main must now contain both sets, sorted and deduplicated.
		want := len(oracleMain) + len(oracleNew)
		if main.Size() != want {
			return false
		}
		ok := true
		main.ForEachTable(func(pidx int, tab *Table) bool {
			if !sorting.IsSortedPairs(tab.Pairs()) {
				ok = false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestUnionHelper(t *testing.T) {
	a := New(1)
	a.Ensure(0).AppendPairs([]uint64{1, 2})
	a.Normalize()
	b := New(2)
	b.Ensure(0).AppendPairs([]uint64{1, 2, 3, 4})
	b.Ensure(1).AppendPairs([]uint64{5, 6})
	b.Normalize()
	Union(a, b)
	if a.Size() != 3 {
		t.Fatalf("union size %d, want 3", a.Size())
	}
}

// TestMergeRoundParallelMatchesSerial: for random inputs, the parallel
// and serial merge paths must produce byte-identical main stores, delta
// stores, and changed-property sets.
func TestMergeRoundParallelMatchesSerial(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nProps := 1 + rng.Intn(6)
		mainSerial := New(nProps)
		inferredA := New(nProps)
		inferredB := New(nProps)
		for i := 0; i < rng.Intn(80); i++ {
			mainSerial.Add(rng.Intn(nProps), uint64(rng.Intn(12)), uint64(rng.Intn(12)))
		}
		mainSerial.Normalize()
		for i := 0; i < rng.Intn(80); i++ {
			p, s, o := rng.Intn(nProps), uint64(rng.Intn(12)), uint64(rng.Intn(12))
			inferredA.Add(p, s, o)
			inferredB.Add(p, s, o)
		}
		mainParallel := mainSerial.Clone()
		mainParallel.Normalize()

		deltaS, changedS := MergeRound(mainSerial, inferredA, false)
		deltaP, changedP := MergeRound(mainParallel, inferredB, true)

		if !reflect.DeepEqual(changedS, changedP) {
			return false
		}
		sameTables := func(a, b *Store) bool {
			if a.NumSlots() != b.NumSlots() || a.Size() != b.Size() {
				return false
			}
			same := true
			a.ForEachTable(func(pidx int, tab *Table) bool {
				other := b.Table(pidx)
				if other == nil || !reflect.DeepEqual(tab.RawPairs(), other.RawPairs()) {
					same = false
					return false
				}
				return true
			})
			return same
		}
		return sameTables(mainSerial, mainParallel) && sameTables(deltaS, deltaP)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestMergeRoundVersions: a merge round bumps the version of exactly the
// tables in the changed set.
func TestMergeRoundVersions(t *testing.T) {
	main := New(3)
	main.Ensure(0).AppendPairs([]uint64{1, 2})
	main.Ensure(1).AppendPairs([]uint64{3, 4})
	main.Normalize()
	v0, v1 := main.Table(0).Version(), main.Table(1).Version()

	inferred := New(3)
	inferred.Ensure(0).AppendPairs([]uint64{1, 2}) // duplicate: no change
	inferred.Ensure(1).AppendPairs([]uint64{5, 6}) // fresh
	inferred.Ensure(2).AppendPairs([]uint64{7, 8}) // fresh, new table

	_, changed := MergeRound(main, inferred, false)
	if !reflect.DeepEqual(changed, []int{1, 2}) {
		t.Fatalf("changed = %v, want [1 2]", changed)
	}
	if main.Table(0).Version() != v0 {
		t.Error("unchanged table's version bumped")
	}
	if main.Table(1).Version() <= v1 {
		t.Error("changed table's version not bumped")
	}
	if main.Table(2).Version() == 0 {
		t.Error("new table's version not bumped")
	}
}

// TestRewriteTerms: every subject/object occurrence moves to the new ID
// and the table stays normalized.
func TestRewriteTerms(t *testing.T) {
	st := New(2)
	st.Ensure(0).AppendPairs([]uint64{5, 9, 9, 2, 1, 1})
	st.Ensure(1).AppendPairs([]uint64{3, 4})
	st.Normalize()
	v1 := st.Table(1).Version()
	st.RewriteTerms(map[uint64]uint64{9: 0})
	want := []uint64{0, 2, 1, 1, 5, 0}
	if !reflect.DeepEqual(st.Table(0).Pairs(), want) {
		t.Fatalf("rewritten table = %v, want %v", st.Table(0).Pairs(), want)
	}
	if st.Table(1).Version() != v1 {
		t.Error("untouched table's version bumped by RewriteTerms")
	}
	if !sorting.IsSortedPairs(st.Table(0).Pairs()) {
		t.Error("rewritten table not re-normalized")
	}
}

func TestDropOSCache(t *testing.T) {
	var tab Table
	tab.AppendPairs([]uint64{1, 2, 3, 4})
	tab.Normalize()
	_ = tab.OS()
	tab.DropOSCache()
	os := tab.OS() // must rebuild, not panic
	if len(os) != 4 {
		t.Fatal("OS rebuild after drop failed")
	}
}

// Stats are exact on subjects, upgrade objects to exact once the OS
// cache exists, and invalidate when the table changes.
func TestTableStats(t *testing.T) {
	var tab Table
	// subjects {1,2}: runs (1,2)(1,3)(2,3); objects {2,3}
	tab.AppendPairs([]uint64{1, 2, 1, 3, 2, 3})
	tab.Normalize()

	st := tab.Stats()
	if st.Pairs != 3 || st.Subjects != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ObjectsExact {
		t.Fatal("objects exact without an OS cache")
	}

	_ = tab.OS()
	st = tab.Stats()
	if !st.ObjectsExact || st.Objects != 2 {
		t.Fatalf("post-OS stats = %+v", st)
	}

	tab.Append(9, 9)
	tab.Normalize()
	st = tab.Stats()
	if st.Pairs != 4 || st.Subjects != 3 {
		t.Fatalf("stats after mutation = %+v (stale cache?)", st)
	}
}

// TestNormalizeParallelMatchesSerial: the pooled normalization must
// produce byte-identical tables to the serial path on random stores,
// including the ≤1-dirty-table fast path.
func TestNormalizeParallelMatchesSerial(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nProps := 1 + rng.Intn(8)
		serial := New(nProps)
		for i := 0; i < rng.Intn(120); i++ {
			serial.Add(rng.Intn(nProps), uint64(rng.Intn(15)), uint64(rng.Intn(15)))
		}
		par := serial.Clone()
		serial.Normalize()
		par.NormalizeParallel()
		if serial.Size() != par.Size() {
			return false
		}
		same := true
		serial.ForEachTable(func(pidx int, tab *Table) bool {
			other := par.Table(pidx)
			if other == nil || !reflect.DeepEqual(tab.Pairs(), other.Pairs()) {
				same = false
				return false
			}
			return true
		})
		return same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestWarmOSCaches: pre-warming builds the same ⟨o,s⟩ views the lazy
// path would, and a subsequent OS() call reuses them (same backing
// array, no rebuild).
func TestWarmOSCaches(t *testing.T) {
	st := New(2)
	st.Ensure(0).AppendPairs([]uint64{2, 7, 1, 9})
	st.Ensure(1).AppendPairs([]uint64{4, 3})
	st.Normalize()
	st.WarmOSCaches()
	os0 := st.Table(0).OS()
	if !reflect.DeepEqual(os0, []uint64{7, 2, 9, 1}) {
		t.Fatalf("warmed OS view wrong: %v", os0)
	}
	if &os0[0] != &st.Table(0).OS()[0] {
		t.Error("OS() after warm rebuilt the cache")
	}
	if got := st.Table(1).OS(); !reflect.DeepEqual(got, []uint64{3, 4}) {
		t.Fatalf("table 1 OS = %v", got)
	}
}

func TestTableDeletePairs(t *testing.T) {
	var tab Table
	tab.AppendPairs([]uint64{1, 1, 1, 2, 2, 5, 3, 3, 9, 9})
	tab.Normalize()
	v0 := tab.Version()
	_ = tab.OS()

	var del Table
	del.AppendPairs([]uint64{1, 2, 2, 5, 7, 7}) // (7,7) absent: ignored
	del.Normalize()

	if n := tab.DeletePairs(del.Pairs()); n != 2 {
		t.Fatalf("removed %d pairs, want 2", n)
	}
	want := []uint64{1, 1, 3, 3, 9, 9}
	if !reflect.DeepEqual(tab.Pairs(), want) {
		t.Fatalf("after delete = %v, want %v", tab.Pairs(), want)
	}
	if tab.Version() <= v0 {
		t.Error("delete must bump the version counter")
	}
	if !sorting.IsSortedPairs(tab.Pairs()) {
		t.Error("delete must preserve the sort")
	}
	// The ⟨o,s⟩ cache and planner stats must reflect the deletion.
	if os := tab.OS(); len(os) != 6 || os[1] != 1 {
		t.Fatalf("OS view not invalidated: %v", os)
	}
	if st := tab.Stats(); st.Pairs != 3 || st.Subjects != 3 {
		t.Fatalf("stats stale after delete: %+v", st)
	}
	// Deleting nothing leaves the version alone.
	v1 := tab.Version()
	if n := tab.DeletePairs([]uint64{7, 7}); n != 0 || tab.Version() != v1 {
		t.Fatal("no-op delete must not bump the version")
	}
}

// TestTableDeletePairsQuick: deleting a random subset matches the
// map-based oracle for arbitrary table contents.
func TestTableDeletePairsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var tab, del Table
		oracle := map[[2]uint64]bool{}
		for i := 0; i < rng.Intn(80); i++ {
			s, o := uint64(rng.Intn(10)), uint64(rng.Intn(10))
			tab.Append(s, o)
			oracle[[2]uint64{s, o}] = true
		}
		for i := 0; i < rng.Intn(40); i++ {
			s, o := uint64(rng.Intn(12)), uint64(rng.Intn(12))
			del.Append(s, o)
			delete(oracle, [2]uint64{s, o})
		}
		tab.Normalize()
		del.Normalize()
		tab.DeletePairs(del.Pairs())
		if tab.Size() != len(oracle) {
			return false
		}
		p := tab.Pairs()
		for i := 0; i < len(p); i += 2 {
			if !oracle[[2]uint64{p[i], p[i+1]}] {
				return false
			}
		}
		return sorting.IsSortedPairs(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStoreDelete(t *testing.T) {
	st := New(3)
	st.Ensure(0).AppendPairs([]uint64{1, 2, 3, 4})
	st.Ensure(2).AppendPairs([]uint64{5, 6})
	st.Normalize()
	del := New(3)
	del.Ensure(0).AppendPairs([]uint64{3, 4})
	del.Ensure(1).AppendPairs([]uint64{9, 9}) // table absent in st
	del.Ensure(2).AppendPairs([]uint64{5, 6})
	del.Normalize()
	if n := st.Delete(del); n != 2 {
		t.Fatalf("removed %d, want 2", n)
	}
	if st.Size() != 1 || !st.Contains(0, 1, 2) || st.Contains(2, 5, 6) {
		t.Fatalf("store after delete wrong: size=%d", st.Size())
	}
}

// TestRewriteTermsManyTables: the pooled rewrite path (more than one
// table) matches per-table expectations.
func TestRewriteTermsManyTables(t *testing.T) {
	st := New(4)
	for p := 0; p < 4; p++ {
		st.Ensure(p).AppendPairs([]uint64{9, uint64(p), uint64(p), 9})
	}
	st.Normalize()
	st.RewriteTerms(map[uint64]uint64{9: 100})
	for p := 0; p < 4; p++ {
		want := []uint64{uint64(p), 100, 100, uint64(p)}
		if p == 0 {
			// 0,100 sorts before 100,0.
			want = []uint64{0, 100, 100, 0}
		}
		if !reflect.DeepEqual(st.Table(p).Pairs(), want) {
			t.Fatalf("table %d = %v, want %v", p, st.Table(p).Pairs(), want)
		}
		if !sorting.IsSortedPairs(st.Table(p).Pairs()) {
			t.Errorf("table %d not re-normalized", p)
		}
	}
}
