// Package store implements Inferray's triple-store layout (§3–4 of the
// paper): vertical partitioning into one property table per property,
// each a flat dynamic array of 64-bit ⟨subject, object⟩ pairs kept sorted
// on ⟨s,o⟩ and free of duplicates, with a lazily materialized ⟨o,s⟩-sorted
// cache for the joins that need object order. All inference reads are
// sequential scans or galloping searches over these arrays.
package store

import (
	"runtime"
	"sync"
	"sync/atomic"

	"inferray/internal/sorting"
)

// Table is one property table: a flat ⟨s,o⟩ pair list. After Normalize
// the primary list is sorted on ⟨s,o⟩ and duplicate-free; OS() serves the
// ⟨o,s⟩-sorted view, built on demand and invalidated by any mutation
// (the paper's clearable cache).
type Table struct {
	pairs   []uint64
	os      []uint64 // cache: pairs re-ordered as (o,s), sorted
	osOK    bool
	dirty   bool   // true when unsorted appends are pending
	version uint64 // bumped on every content mutation

	// Planner statistics, cached per version (guarded by osMu).
	stats        TableStats
	statsOK      bool
	statsVersion uint64

	osMu sync.Mutex // guards lazy construction of os (rules run in parallel)
}

// Version returns the table's mutation counter: it increases every time
// the table's contents change (appends, merges, rewrites), so readers
// can detect staleness without diffing pairs.
func (t *Table) Version() uint64 { return t.version }

// SetVersion overwrites the mutation counter. Snapshot restore uses it
// so a table resumes the counter it was persisted with, keeping
// version-based pairing (snapshot image ↔ WAL tail) stable across a
// save/load cycle.
func (t *Table) SetVersion(v uint64) { t.version = v }

// Append adds one pair. The table becomes dirty until Normalize.
func (t *Table) Append(s, o uint64) {
	t.pairs = append(t.pairs, s, o)
	t.dirty = true
	t.osOK = false
	t.version++
}

// AppendPairs bulk-adds a flat pair list.
func (t *Table) AppendPairs(pairs []uint64) {
	if len(pairs) == 0 {
		return
	}
	t.pairs = append(t.pairs, pairs...)
	t.dirty = true
	t.osOK = false
	t.version++
}

// SetPairs replaces the table contents with an owned, unsorted pair list.
func (t *Table) SetPairs(pairs []uint64) {
	t.pairs = pairs
	t.dirty = true
	t.osOK = false
	t.version++
}

// DeletePairs removes every ⟨s,o⟩ pair of del — a normalized flat pair
// list (⟨s,o⟩-sorted, duplicate-free) — from the table in one linear
// merge pass; pairs absent from the table are ignored. The table must be
// normalized and stays normalized (removal preserves the sort), so no
// re-sort is needed. The version bump invalidates the cached planner
// statistics, and the ⟨o,s⟩ cache is dropped under osMu. Returns the
// number of pairs removed. Like Normalize, it requires exclusive access.
func (t *Table) DeletePairs(del []uint64) int {
	if t.dirty {
		panic("store: DeletePairs on dirty table; call Normalize first")
	}
	if len(del) == 0 || len(t.pairs) == 0 {
		return 0
	}
	pairs := t.pairs
	out := pairs[:0] // in-place compaction: write index never passes read index
	di := 0
	removed := 0
	for i := 0; i < len(pairs); i += 2 {
		s, o := pairs[i], pairs[i+1]
		for di < len(del) && (del[di] < s || (del[di] == s && del[di+1] < o)) {
			di += 2
		}
		if di < len(del) && del[di] == s && del[di+1] == o {
			removed++
			continue
		}
		out = append(out, s, o)
	}
	if removed == 0 {
		return 0
	}
	t.pairs = out
	t.version++
	t.invalidateOS()
	return removed
}

// Normalize sorts the primary list on ⟨s,o⟩ and removes duplicates using
// the operating-range sort selector (§5.4). It is a no-op on clean tables.
func (t *Table) Normalize() {
	if !t.dirty {
		return
	}
	t.pairs = sorting.SortPairs(t.pairs, true)
	t.dirty = false
}

// Pairs returns the ⟨s,o⟩-sorted pair list. The table must be normalized.
func (t *Table) Pairs() []uint64 {
	if t.dirty {
		panic("store: Pairs on dirty table; call Normalize first")
	}
	return t.pairs
}

// RawPairs returns the pair list without asserting sortedness (loaders
// and mergers use it).
func (t *Table) RawPairs() []uint64 { return t.pairs }

// Size returns the number of pairs.
func (t *Table) Size() int { return len(t.pairs) / 2 }

// Empty reports whether the table holds no pairs.
func (t *Table) Empty() bool { return len(t.pairs) == 0 }

// OS returns the ⟨o,s⟩-sorted view: a flat pair list whose even indices
// are objects and odd indices subjects, sorted on ⟨o,s⟩. It is computed
// lazily and cached until the table changes (§4.2).
func (t *Table) OS() []uint64 {
	if t.dirty {
		panic("store: OS on dirty table; call Normalize first")
	}
	t.osMu.Lock()
	defer t.osMu.Unlock()
	if !t.osOK {
		os := make([]uint64, len(t.pairs))
		for i := 0; i < len(t.pairs); i += 2 {
			os[i] = t.pairs[i+1]
			os[i+1] = t.pairs[i]
		}
		t.os = sorting.SortPairs(os, false)
		t.osOK = true
	}
	return t.os
}

// TableStats summarizes a table for the query planner's selectivity
// estimates (§5.1 of the paper: dense numbering keeps these cheap).
// Pairs is the triple count; Subjects is the exact number of distinct
// subjects (= the number of subject runs in the ⟨s,o⟩ order); Objects
// is the number of distinct objects — exact when the ⟨o,s⟩ cache was
// materialized at collection time (ObjectsExact), otherwise estimated
// as Subjects so that stats collection never forces an OS build.
type TableStats struct {
	Pairs        int
	Subjects     int
	Objects      int
	ObjectsExact bool
}

// Stats returns the table's planner statistics, computed lazily and
// cached until the table's version changes. The table must be
// normalized. Safe for concurrent use (shares osMu with the OS cache).
func (t *Table) Stats() TableStats {
	if t.dirty {
		panic("store: Stats on dirty table; call Normalize first")
	}
	t.osMu.Lock()
	defer t.osMu.Unlock()
	// Recompute when stale, and also when the OS cache has appeared
	// since the last computation (upgrading Objects to exact).
	if t.statsOK && t.statsVersion == t.version && (t.stats.ObjectsExact || !t.osOK) {
		return t.stats
	}
	st := TableStats{Pairs: len(t.pairs) / 2}
	st.Subjects = countRuns(t.pairs)
	if t.osOK {
		st.Objects = countRuns(t.os)
		st.ObjectsExact = true
	} else {
		st.Objects = st.Subjects
	}
	t.stats, t.statsOK, t.statsVersion = st, true, t.version
	return st
}

// countRuns counts distinct keys (even positions) of a key-sorted flat
// pair list.
func countRuns(pairs []uint64) int {
	n := 0
	for i := 0; i < len(pairs); i += 2 {
		if i == 0 || pairs[i] != pairs[i-2] {
			n++
		}
	}
	return n
}

// invalidateOS clears the ⟨o,s⟩ cache under osMu. Every writer that
// drops the cache must go through here: cache readers synchronize only
// on osMu inside OS(), so an unlocked clear races a concurrent lazy
// build (LowMemory drops mid-run today; the server's concurrent readers
// make the window permanent).
func (t *Table) invalidateOS() {
	t.osMu.Lock()
	t.osOK = false
	t.os = nil
	t.osMu.Unlock()
}

// DropOSCache releases the ⟨o,s⟩ cache (the paper clears it under memory
// pressure; benchmarks use it for the cache ablation). It is safe to
// call concurrently with OS()/ObjectRun readers.
func (t *Table) DropOSCache() {
	t.invalidateOS()
}

// SubjectRun returns the half-open pair-index range [lo, hi) of pairs
// whose subject equals s. The table must be normalized.
func (t *Table) SubjectRun(s uint64) (lo, hi int) {
	return pairRun(t.Pairs(), s)
}

// ObjectRun returns the half-open pair-index range [lo, hi) in the OS
// view of pairs whose object equals o.
func (t *Table) ObjectRun(o uint64) (lo, hi int) {
	return pairRun(t.OS(), o)
}

// Contains reports whether the pair (s, o) is present.
func (t *Table) Contains(s, o uint64) bool {
	p := t.Pairs()
	lo, hi := pairRun(p, s)
	for i := lo; i < hi; i++ {
		if p[2*i+1] == o {
			return true
		}
		if p[2*i+1] > o {
			return false
		}
	}
	return false
}

// pairRun binary-searches a key-sorted flat pair list for the run of
// pairs whose key (even index) equals k, returned as pair indices.
func pairRun(pairs []uint64, k uint64) (lo, hi int) {
	n := len(pairs) / 2
	lo = lowerBound(pairs, n, k)
	hi = lo
	for hi < n && pairs[2*hi] == k {
		hi++
	}
	return lo, hi
}

// lowerBound returns the first pair index whose key is >= k.
func lowerBound(pairs []uint64, n int, k uint64) int {
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pairs[2*mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Store is a set of property tables indexed by dense property index
// (dictionary.PropIndex). A nil entry means the property has no triples.
type Store struct {
	tables []*Table
}

// New creates a store sized for the given number of properties; it grows
// automatically when later properties appear.
func New(numProps int) *Store {
	return &Store{tables: make([]*Table, numProps)}
}

// Grow ensures the store can index at least numProps properties.
func (st *Store) Grow(numProps int) {
	for len(st.tables) < numProps {
		st.tables = append(st.tables, nil)
	}
}

// NumSlots returns the size of the property-table index space.
func (st *Store) NumSlots() int { return len(st.tables) }

// Table returns the table at a property index, or nil.
func (st *Store) Table(pidx int) *Table {
	if pidx < 0 || pidx >= len(st.tables) {
		return nil
	}
	return st.tables[pidx]
}

// Ensure returns the table at a property index, creating it if missing.
func (st *Store) Ensure(pidx int) *Table {
	st.Grow(pidx + 1)
	if st.tables[pidx] == nil {
		st.tables[pidx] = &Table{}
	}
	return st.tables[pidx]
}

// Add appends one triple by property index.
func (st *Store) Add(pidx int, s, o uint64) {
	st.Ensure(pidx).Append(s, o)
}

// Normalize normalizes every table.
func (st *Store) Normalize() {
	for _, t := range st.tables {
		if t != nil {
			t.Normalize()
		}
	}
}

// NormalizeParallel normalizes every dirty table, running the per-table
// sorts concurrently on a GOMAXPROCS-bounded worker pool (§4.3: property
// tables are independent, so index maintenance parallelizes trivially).
// With at most one dirty table it degenerates to the serial path —
// goroutine setup would cost more than the single sort. Like Normalize,
// it requires exclusive access to the store.
func (st *Store) NormalizeParallel() {
	dirty := make([]*Table, 0, 16)
	for _, t := range st.tables {
		if t != nil && t.dirty {
			dirty = append(dirty, t)
		}
	}
	if len(dirty) <= 1 {
		for _, t := range dirty {
			t.Normalize()
		}
		return
	}
	runPool(len(dirty), func(i int) { dirty[i].Normalize() })
}

// WarmOSCaches materializes the ⟨o,s⟩-sorted cache of every non-empty
// table up front, in parallel on the worker pool. The caches are
// otherwise built lazily under each table's lock the first time a rule
// needs object order, which serializes the builds behind the first
// iteration's joins; pre-warming moves that cost to the start of a full
// materialization where all cores are idle. Tables must be normalized.
// Callers that drop caches under memory pressure should not warm them.
func (st *Store) WarmOSCaches() {
	tabs := make([]*Table, 0, 16)
	for _, t := range st.tables {
		if t != nil && !t.Empty() {
			tabs = append(tabs, t)
		}
	}
	if len(tabs) == 0 {
		return
	}
	runPool(len(tabs), func(i int) { tabs[i].OS() })
}

// runPool executes fn(0..n-1) on min(n, GOMAXPROCS) workers pulling
// indexes from a shared atomic counter.
func runPool(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Size returns the total number of triples.
func (st *Store) Size() int {
	n := 0
	for _, t := range st.tables {
		if t != nil {
			n += t.Size()
		}
	}
	return n
}

// Empty reports whether the store holds no triples.
func (st *Store) Empty() bool { return st.Size() == 0 }

// VersionSum folds every table's mutation counter (plus the table
// count, so allocating an empty table registers) into one number: any
// content mutation anywhere in the store changes the sum. Callers use
// it as a cheap change signal — the reasoner derives its query-cache
// generation from it — not as an identity: two different stores may
// share a sum, but one store cannot mutate without its sum moving.
func (st *Store) VersionSum() uint64 {
	n := uint64(0)
	for _, t := range st.tables {
		if t != nil {
			n += t.Version() + 1
		}
	}
	return n
}

// ForEachTable calls fn for every non-empty property table.
func (st *Store) ForEachTable(fn func(pidx int, t *Table) bool) {
	for i, t := range st.tables {
		if t != nil && !t.Empty() {
			if !fn(i, t) {
				return
			}
		}
	}
}

// ForEach calls fn for every triple in table order.
func (st *Store) ForEach(fn func(pidx int, s, o uint64) bool) {
	for i, t := range st.tables {
		if t == nil {
			continue
		}
		p := t.RawPairs()
		for j := 0; j < len(p); j += 2 {
			if !fn(i, p[j], p[j+1]) {
				return
			}
		}
	}
}

// Contains reports whether the triple is present (tables must be
// normalized).
func (st *Store) Contains(pidx int, s, o uint64) bool {
	t := st.Table(pidx)
	return t != nil && !t.Empty() && t.Contains(s, o)
}

// Delete removes every pair of del (both stores normalized) from the
// corresponding tables and returns the total number of pairs removed.
// Touched tables bump their version counters, so planner statistics and
// the ⟨o,s⟩ caches invalidate exactly as they do for insertions.
func (st *Store) Delete(del *Store) int {
	removed := 0
	del.ForEachTable(func(pidx int, dt *Table) bool {
		if t := st.Table(pidx); t != nil && !t.Empty() {
			removed += t.DeletePairs(dt.Pairs())
		}
		return true
	})
	return removed
}

// DropOSCaches releases every table's ⟨o,s⟩ cache (the paper clears
// these under memory pressure, §4.2).
func (st *Store) DropOSCaches() {
	for _, t := range st.tables {
		if t != nil {
			t.DropOSCache()
		}
	}
}

// Clone returns a deep copy of the store (used by tests and baselines).
func (st *Store) Clone() *Store {
	c := New(len(st.tables))
	for i, t := range st.tables {
		if t == nil {
			continue
		}
		nt := &Table{dirty: t.dirty, version: t.version}
		nt.pairs = append(make([]uint64, 0, len(t.pairs)), t.pairs...)
		c.tables[i] = nt
	}
	return c
}

// RewriteTerms replaces every subject/object occurrence of each renames
// key with its value and renormalizes the touched tables, in a single
// pass over the store. The dictionary's resource→property promotions use
// it so terms moved to the property side keep a single identity across
// triples stored before the move; batching the renames keeps a load that
// promotes many terms at one full-store scan instead of one per term.
// Tables rewrite independently (the renames map is only read), so the
// scan runs on the worker pool when more than one table exists.
func (st *Store) RewriteTerms(renames map[uint64]uint64) {
	if len(renames) == 0 {
		return
	}
	tabs := make([]*Table, 0, 16)
	for _, t := range st.tables {
		if t != nil && !t.Empty() {
			tabs = append(tabs, t)
		}
	}
	runPool(len(tabs), func(k int) {
		t := tabs[k]
		touched := false
		for i, v := range t.pairs {
			if nv, ok := renames[v]; ok {
				t.pairs[i] = nv
				touched = true
			}
		}
		if touched {
			t.dirty = true
			t.version++
			t.invalidateOS()
			t.Normalize()
		}
	})
}
