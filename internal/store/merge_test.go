package store

import (
	"reflect"
	"sync"
	"testing"
)

// TestMergeRoundDeltaNotAliased is the regression test for the
// empty-main fast path of mergeSorted: the round's delta table must own
// its storage, so that later in-place mutations of the main table
// (appends into spare capacity, in-place normalization) cannot corrupt
// delta pairs still being read by the scheduler.
func TestMergeRoundDeltaNotAliased(t *testing.T) {
	main := New(1)
	inferred := New(1)
	// The duplicate pair makes the merge-round sort trim its result,
	// leaving spare capacity in the sorted slice — the precondition for
	// the old aliasing: main's table and the delta shared that array.
	inferred.Ensure(0).AppendPairs([]uint64{5, 50, 1, 10, 1, 10, 3, 30})

	delta, changed := MergeRound(main, inferred, false)
	if !reflect.DeepEqual(changed, []int{0}) {
		t.Fatalf("changed = %v, want [0]", changed)
	}
	want := []uint64{1, 10, 3, 30, 5, 50}
	dt := delta.Table(0)
	if dt == nil || !reflect.DeepEqual(dt.RawPairs(), want) {
		t.Fatalf("delta pairs = %v, want %v", dt.RawPairs(), want)
	}

	// Mutate main after the round the way a later iteration does: append
	// (fills shared spare capacity) and normalize (sorts in place).
	mt := main.Table(0)
	mt.AppendPairs([]uint64{0, 7})
	mt.Normalize()

	if !reflect.DeepEqual(dt.RawPairs(), want) {
		t.Fatalf("delta corrupted by main mutation: %v, want %v", dt.RawPairs(), want)
	}
}

// TestMergeRoundMergedPathNotAliased covers the general merge path too:
// a round over a non-empty main must also leave delta independent.
func TestMergeRoundMergedPathNotAliased(t *testing.T) {
	main := New(1)
	main.Ensure(0).AppendPairs([]uint64{2, 20})
	main.Normalize()
	inferred := New(1)
	inferred.Ensure(0).AppendPairs([]uint64{1, 10, 3, 30})

	delta, _ := MergeRound(main, inferred, false)
	want := []uint64{1, 10, 3, 30}
	dt := delta.Table(0)
	if dt == nil || !reflect.DeepEqual(dt.RawPairs(), want) {
		t.Fatalf("delta pairs = %v, want %v", dt.RawPairs(), want)
	}

	mt := main.Table(0)
	mt.AppendPairs([]uint64{0, 7})
	mt.Normalize()

	if !reflect.DeepEqual(dt.RawPairs(), want) {
		t.Fatalf("delta corrupted by main mutation: %v, want %v", dt.RawPairs(), want)
	}
}

// TestDropOSCacheConcurrentWithReaders hammers DropOSCache against
// concurrent OS()/ObjectRun readers; it fails under -race when the drop
// writes the cache fields without taking osMu (the WithLowMemory /
// concurrent-server race).
func TestDropOSCacheConcurrentWithReaders(t *testing.T) {
	tab := &Table{}
	for i := uint64(0); i < 256; i++ {
		tab.Append(i, 1000-i)
	}
	tab.Normalize()

	const iters = 500
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				os := tab.OS()
				if len(os) != 512 {
					t.Errorf("OS length %d, want 512", len(os))
					return
				}
				lo, hi := tab.ObjectRun(1000)
				if hi-lo != 1 {
					t.Errorf("ObjectRun(1000) = [%d,%d), want one pair", lo, hi)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			tab.DropOSCache()
		}
	}()
	wg.Wait()
}
