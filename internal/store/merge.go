package store

import (
	"runtime"
	"sync"

	"inferray/internal/sorting"
)

// MergeRound performs the per-iteration update of Figure 5 for every
// property that received inferred triples: the inferred table is sorted
// and deduplicated, then merged into main while the pairs not already in
// main are collected into the returned delta store ("new" in Algorithm
// 1). Main's tables remain sorted and duplicate-free; their ⟨o,s⟩ caches
// are invalidated when new triples arrive (§4.2).
//
// The second result is the changed-property set: the sorted property
// indexes whose main table actually received fresh pairs this round. It
// is the signal the reasoner's dependency scheduler keys on — a rule
// need not fire next iteration unless its read footprint intersects this
// set.
//
// Each property is independent, so tables are merged in parallel when
// parallel is true (§4.3).
func MergeRound(main, inferred *Store, parallel bool) (*Store, []int) {
	main.Grow(len(inferred.tables))
	delta := New(len(main.tables))

	work := make([]int, 0, len(inferred.tables))
	for pidx, t := range inferred.tables {
		if t != nil && !t.Empty() {
			work = append(work, pidx)
		}
	}

	mergeOne := func(pidx int) {
		inf := sorting.SortPairs(inferred.tables[pidx].RawPairs(), true)
		mt := main.Ensure(pidx)
		merged, fresh := mergeSorted(mt.pairs, inf)
		if len(fresh) == 0 {
			return
		}
		// Direct field writes are safe here: MergeRound runs only inside a
		// materialization, which excludes engine readers entirely, and the
		// parallel mergeOne goroutines each own a distinct table. Only the
		// ⟨o,s⟩-cache fields also move under osMu, because table readers
		// (which may resume the instant the materialization's write lock is
		// released) synchronize on that lock alone inside OS().
		mt.pairs = merged
		mt.dirty = false
		mt.version++
		mt.invalidateOS()
		dt := &Table{pairs: fresh}
		delta.tables[pidx] = dt
	}

	if parallel && len(work) > 1 {
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		var wg sync.WaitGroup
		for _, pidx := range work {
			wg.Add(1)
			sem <- struct{}{}
			go func(pidx int) {
				defer wg.Done()
				mergeOne(pidx)
				<-sem
			}(pidx)
		}
		wg.Wait()
	} else {
		for _, pidx := range work {
			mergeOne(pidx)
		}
	}

	// work is already sorted (index order), so changed is too.
	changed := make([]int, 0, len(work))
	for _, pidx := range work {
		if delta.tables[pidx] != nil {
			changed = append(changed, pidx)
		}
	}
	return delta, changed
}

// mergeSorted merges two ⟨s,o⟩-sorted duplicate-free pair lists. It
// returns the union (sorted, duplicate-free) and the pairs of inf that
// were not present in main ("keep new triples & skip duplicates",
// Figure 5). When inf adds nothing, merged aliases main and fresh is nil.
// merged and fresh never share a backing array: merged becomes the main
// table's pairs — which later appends and in-place normalizations may
// rewrite — while fresh becomes a delta table still scanned by the
// scheduler after this round, so aliasing the two corrupts the delta.
func mergeSorted(main, inf []uint64) (merged, fresh []uint64) {
	if len(inf) == 0 {
		return main, nil
	}
	if len(main) == 0 {
		// Everything is fresh. inf (often a trimmed subslice of a larger
		// sort buffer, with spare capacity) goes to main; the delta copy
		// must own separate storage.
		fresh = append(make([]uint64, 0, len(inf)), inf...)
		return inf, fresh
	}
	merged = make([]uint64, 0, len(main)+len(inf))
	fresh = make([]uint64, 0, len(inf))
	i, j := 0, 0
	for i < len(main) && j < len(inf) {
		ms, mo := main[i], main[i+1]
		is, io := inf[j], inf[j+1]
		switch {
		case ms < is || (ms == is && mo < io):
			merged = append(merged, ms, mo)
			i += 2
		case ms == is && mo == io:
			merged = append(merged, ms, mo)
			i += 2
			j += 2
		default:
			merged = append(merged, is, io)
			fresh = append(fresh, is, io)
			j += 2
		}
	}
	for ; i < len(main); i += 2 {
		merged = append(merged, main[i], main[i+1])
	}
	for ; j < len(inf); j += 2 {
		merged = append(merged, inf[j], inf[j+1])
		fresh = append(fresh, inf[j], inf[j+1])
	}
	if len(fresh) == 0 {
		return main, nil
	}
	return merged, fresh
}

// Union merges every table of src into dst (both normalized afterwards).
// It is a convenience for building stores outside the inference loop.
func Union(dst, src *Store) {
	src.ForEachTable(func(pidx int, t *Table) bool {
		dst.Ensure(pidx).AppendPairs(t.RawPairs())
		return true
	})
	dst.Normalize()
}
