package qcache

import (
	"fmt"
	"testing"
)

func TestGetPutAndLRUEviction(t *testing.T) {
	c := New(Options{MaxEntries: 2})
	k := func(i int) Key { return Key{Query: fmt.Sprintf("q%d", i), Generation: 1} }
	e := func(i int) Entry { return Entry{Body: []byte(fmt.Sprintf("body%d", i)), ContentType: "x"} }

	if _, ok := c.Get(k(1)); ok {
		t.Fatal("hit on empty cache")
	}
	if !c.Put(k(1), e(1)) || !c.Put(k(2), e(2)) {
		t.Fatal("put refused under capacity")
	}
	if got, ok := c.Get(k(1)); !ok || string(got.Body) != "body1" {
		t.Fatalf("Get(k1) = %q, %v", got.Body, ok)
	}
	// k1 is now MRU; inserting k3 must evict k2.
	c.Put(k(3), e(3))
	if _, ok := c.Get(k(2)); ok {
		t.Fatal("k2 survived eviction at capacity")
	}
	if _, ok := c.Get(k(1)); !ok {
		t.Fatal("recently used k1 was evicted")
	}
	st := c.Snapshot()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction, 2 entries", st)
	}
}

func TestGenerationIsolatesEntries(t *testing.T) {
	c := New(Options{MaxEntries: 8})
	k1 := Key{Query: "SELECT ?x", Generation: 1}
	k2 := Key{Query: "SELECT ?x", Generation: 2}
	c.Put(k1, Entry{Body: []byte("old")})
	if _, ok := c.Get(k2); ok {
		t.Fatal("lookup at generation 2 returned a generation-1 body")
	}
	c.Put(k2, Entry{Body: []byte("new")})
	if got, _ := c.Get(k2); string(got.Body) != "new" {
		t.Fatalf("generation 2 body = %q", got.Body)
	}
	if got, _ := c.Get(k1); string(got.Body) != "old" {
		t.Fatalf("generation 1 body = %q", got.Body)
	}
}

func TestByteBudgetEviction(t *testing.T) {
	c := New(Options{MaxEntries: 100, MaxBytes: 400, MaxEntryBytes: 400})
	body := make([]byte, 100)
	for i := 0; i < 5; i++ {
		c.Put(Key{Query: fmt.Sprintf("q%d", i)}, Entry{Body: body})
	}
	st := c.Snapshot()
	if st.Bytes > 400 {
		t.Fatalf("bytes %d over budget 400", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions under byte pressure")
	}
}

func TestOversizedEntryRefused(t *testing.T) {
	c := New(Options{MaxEntries: 4, MaxEntryBytes: 64})
	if c.Put(Key{Query: "big"}, Entry{Body: make([]byte, 128)}) {
		t.Fatal("oversized body accepted")
	}
	if st := c.Snapshot(); st.Entries != 0 {
		t.Fatalf("entries = %d after refused put", st.Entries)
	}
}

func TestDisabledCache(t *testing.T) {
	c := New(Options{MaxEntries: 0})
	if c.Enabled() {
		t.Fatal("MaxEntries 0 reported enabled")
	}
	if c.Put(Key{Query: "q"}, Entry{Body: []byte("b")}) {
		t.Fatal("disabled cache accepted a put")
	}
	var nilCache *Cache
	if nilCache.Enabled() {
		t.Fatal("nil cache reported enabled")
	}
	nilCache.Bypass()       // must not panic
	_ = nilCache.Snapshot() // must not panic
}

func TestPutReplacesExisting(t *testing.T) {
	c := New(Options{MaxEntries: 4})
	k := Key{Query: "q", Generation: 7}
	c.Put(k, Entry{Body: []byte("first")})
	c.Put(k, Entry{Body: []byte("second, longer body")})
	got, ok := c.Get(k)
	if !ok || string(got.Body) != "second, longer body" {
		t.Fatalf("Get = %q, %v", got.Body, ok)
	}
	if st := c.Snapshot(); st.Entries != 1 {
		t.Fatalf("entries = %d after replace", st.Entries)
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT ?x WHERE { ?x a ?y }", "SELECT ?x WHERE { ?x a ?y }"},
		{"  SELECT   ?x\n\tWHERE {\n ?x a ?y }\n", "SELECT ?x WHERE { ?x a ?y }"},
		{"SELECT ?x # trailing comment\nWHERE { ?x a ?y }", "SELECT ?x WHERE { ?x a ?y }"},
		// '#' inside an IRI is a fragment, not a comment.
		{"SELECT ?x WHERE { ?x <http://ex.org/ns#type> ?y }", "SELECT ?x WHERE { ?x <http://ex.org/ns#type> ?y }"},
		// Whitespace and '#' inside string literals are semantic.
		{`SELECT ?x WHERE { ?x ?p "a  b # not a comment" }`, `SELECT ?x WHERE { ?x ?p "a  b # not a comment" }`},
		{`FILTER(?x = 'it''s  kept')`, `FILTER(?x = 'it''s  kept')`},
		// Escaped quote does not close the string.
		{`FILTER(?x = "say \" hi   there")`, `FILTER(?x = "say \" hi   there")`},
		{"# only a comment", ""},
	}
	for _, tc := range cases {
		if got := Normalize(tc.in); got != tc.want {
			t.Errorf("Normalize(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
	// Distinct queries must stay distinct.
	a := Normalize(`SELECT ?x WHERE { ?x ?p "v one" }`)
	b := Normalize(`SELECT ?x WHERE { ?x ?p "v  one" }`)
	if a == b {
		t.Fatal("normalization collided two distinct literals")
	}
}

func TestSnapshotCounters(t *testing.T) {
	c := New(Options{MaxEntries: 2})
	k := Key{Query: "q"}
	c.Get(k)
	c.Put(k, Entry{Body: []byte("b")})
	c.Get(k)
	c.Bypass()
	st := c.Snapshot()
	if st.Hits != 1 || st.Misses != 1 || st.Bypassed != 1 {
		t.Fatalf("counters = %+v", st)
	}
}

// Byte-budget eviction under mixed entry sizes must walk strict LRU
// order: a large entry under pressure evicts however many
// least-recently-used entries it takes — small or large — and never
// skips ahead to a bigger, more recently used victim.
func TestByteBudgetEvictionOrderingMixedSizes(t *testing.T) {
	// Charges are body + len(query) + 48; two-byte queries make each
	// entry's charge body+50.
	c := New(Options{MaxEntries: 100, MaxBytes: 1000, MaxEntryBytes: 1000})
	k := func(i int) Key { return Key{Query: fmt.Sprintf("q%d", i)} }
	put := func(i, bodyLen int) {
		if !c.Put(k(i), Entry{Body: make([]byte, bodyLen)}) {
			t.Fatalf("put q%d (%d bytes) refused", i, bodyLen)
		}
	}
	has := func(i int) bool { _, ok := c.Get(k(i)); return ok }

	// Fill exactly to the 1000-byte budget with alternating sizes:
	// charges 150, 350, 150, 350.
	put(0, 100)
	put(1, 300)
	put(2, 100)
	put(3, 300)
	if st := c.Snapshot(); st.Bytes != 1000 || st.Evictions != 0 {
		t.Fatalf("after fill: %+v, want bytes=1000 evictions=0", st)
	}

	// Touch q0 so recency order (LRU→MRU) is q1, q2, q3, q0 — the
	// smallest entry is now the most recent, the oldest is large.
	has(0)

	// A 152-byte-body insert (charge 202) overflows by 202; strict LRU
	// must evict exactly the large q1 (350), not the smaller q2.
	put(4, 152)
	if has(1) {
		t.Fatal("LRU q1 survived while the budget was exceeded")
	}
	for _, i := range []int{0, 2, 3, 4} {
		if !has(i) {
			t.Fatalf("q%d evicted out of LRU order", i)
		}
	}
	if st := c.Snapshot(); st.Bytes != 1000-350+202 || st.Evictions != 1 {
		t.Fatalf("after q4: %+v, want bytes=%d evictions=1", st, 1000-350+202)
	}

	// Recency is now q2, q3, q0, q4 (the Get calls above re-ordered
	// nothing among the survivors except via the assertions: q0 was
	// touched before q2/q3/q4). Re-pin the order explicitly, oldest
	// first q2 → newest q0.
	has(3)
	has(4)
	has(0)

	// A 552-byte-body insert (charge 602) needs two victims: q2 (150)
	// alone is not enough, so q3 (350) goes too — in order, smallest
	// first because it is oldest, not because of its size.
	put(5, 552)
	if has(2) || has(3) {
		t.Fatal("q2/q3 survived a two-victim eviction")
	}
	for _, i := range []int{0, 4, 5} {
		if !has(i) {
			t.Fatalf("q%d evicted beyond what the budget required", i)
		}
	}
	st := c.Snapshot()
	if st.Evictions != 3 || st.Bytes > 1000 {
		t.Fatalf("final: %+v, want 3 evictions within budget", st)
	}
}
