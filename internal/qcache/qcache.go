// Package qcache is the server's query-result cache: a bounded LRU
// keyed on (normalized query text, store generation, row cap) holding
// fully-buffered response bodies.
//
// The generation in the key is what makes the cache correct by
// construction instead of by invalidation protocol. The Reasoner bumps
// its generation counter under the write lock on every mutation that
// changes a table version (Materialize after inserts, Retract, Update),
// and query evaluation captures the generation under the read lock it
// holds for the whole enumeration — so a body stored under generation g
// was provably computed against exactly the closure of generation g. A
// lookup at the current generation therefore either misses or returns
// bytes identical to what a fresh evaluation would produce; stale
// entries are not invalidated, they simply become unreachable (no
// future lookup carries an old generation) and age out of the LRU.
//
// The cache itself is storage policy only: it never talks to the
// reasoner and trusts its callers to key entries honestly.
package qcache

import (
	"container/list"
	"strings"
	"sync"
)

// Key identifies one cacheable response.
type Key struct {
	// Query is the normalized query text (see Normalize).
	Query string
	// Generation is the store generation the response was computed at.
	Generation uint64
	// MaxRows is the request's row cap (the HTTP limit parameter); the
	// same query truncated differently is a different response.
	MaxRows int
}

// Entry is one cached response: the fully-buffered body and the
// Content-Type it was served with.
type Entry struct {
	Body        []byte
	ContentType string
}

// size is the byte-budget charge for an entry: body plus the key's
// query text (the dominant key component).
func (k Key) size(e Entry) int64 {
	return int64(len(e.Body) + len(k.Query) + len(e.ContentType) + 48)
}

// Options bound the cache.
type Options struct {
	// MaxEntries caps the number of cached responses; <= 0 means 0
	// (cache disabled). The LRU entry is evicted at the cap.
	MaxEntries int
	// MaxBytes caps the summed charge of all entries; <= 0 applies the
	// default of 64 MiB.
	MaxBytes int64
	// MaxEntryBytes caps a single body; larger responses are refused by
	// Put (and should be bypassed by the caller). <= 0 applies the
	// default of 4 MiB.
	MaxEntryBytes int64
}

const (
	defaultMaxBytes      = 64 << 20
	defaultMaxEntryBytes = 4 << 20
)

// Stats is a point-in-time counter snapshot, exposed through /stats.
type Stats struct {
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	Bypassed   uint64 `json:"bypassed"`
	Evictions  uint64 `json:"evictions"`
	Entries    int    `json:"entries"`
	Bytes      int64  `json:"bytes"`
	MaxEntries int    `json:"max_entries"`
	MaxBytes   int64  `json:"max_bytes"`
}

// Cache is a mutex-guarded LRU over Key → Entry. The zero value is not
// usable; construct with New. All methods are safe for concurrent use.
type Cache struct {
	mu    sync.Mutex
	opts  Options
	ll    *list.List // front = most recently used
	index map[Key]*list.Element
	bytes int64

	hits      uint64
	misses    uint64
	bypassed  uint64
	evictions uint64
}

// cacheItem is the list payload: the key is carried so eviction can
// delete from the index without a reverse map.
type cacheItem struct {
	key   Key
	entry Entry
}

// New builds a cache with the given bounds (zero-value fields take the
// documented defaults).
func New(opts Options) *Cache {
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = defaultMaxBytes
	}
	if opts.MaxEntryBytes <= 0 {
		opts.MaxEntryBytes = defaultMaxEntryBytes
	}
	return &Cache{
		opts:  opts,
		ll:    list.New(),
		index: make(map[Key]*list.Element),
	}
}

// Enabled reports whether the cache can hold anything at all.
func (c *Cache) Enabled() bool { return c != nil && c.opts.MaxEntries > 0 }

// Get returns the cached entry for key and promotes it to most recently
// used. ok is false on a miss. The returned body must be treated as
// read-only — it is shared with every other hit.
func (c *Cache) Get(key Key) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[key]
	if !ok {
		c.misses++
		return Entry{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheItem).entry, true
}

// Put stores an entry, evicting from the LRU tail until both bounds
// hold. Oversized bodies and disabled caches are refused (the caller
// counts those as bypasses via Bypass). Storing an existing key
// replaces its entry.
func (c *Cache) Put(key Key, e Entry) bool {
	if !c.Enabled() || key.size(e) > c.opts.MaxEntryBytes {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key]; ok {
		it := el.Value.(*cacheItem)
		c.bytes += key.size(e) - it.key.size(it.entry)
		it.entry = e
		c.ll.MoveToFront(el)
	} else {
		c.index[key] = c.ll.PushFront(&cacheItem{key: key, entry: e})
		c.bytes += key.size(e)
	}
	for c.ll.Len() > c.opts.MaxEntries || c.bytes > c.opts.MaxBytes {
		c.evictOldestLocked()
	}
	return true
}

// Bypass records a request that skipped the cache (no-cache header,
// oversized body, non-cacheable form) so the hit ratio stays honest.
func (c *Cache) Bypass() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.bypassed++
	c.mu.Unlock()
}

// evictOldestLocked drops the LRU entry; c.mu must be held.
func (c *Cache) evictOldestLocked() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	it := el.Value.(*cacheItem)
	c.ll.Remove(el)
	delete(c.index, it.key)
	c.bytes -= it.key.size(it.entry)
	c.evictions++
}

// Snapshot returns the current counters and occupancy.
func (c *Cache) Snapshot() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:       c.hits,
		Misses:     c.misses,
		Bypassed:   c.bypassed,
		Evictions:  c.evictions,
		Entries:    c.ll.Len(),
		Bytes:      c.bytes,
		MaxEntries: c.opts.MaxEntries,
		MaxBytes:   c.opts.MaxBytes,
	}
}

// Normalize canonicalizes query text for use as a cache key: comments
// (# to end of line) are stripped and runs of whitespace collapse to
// one space, both only outside quoted strings and IRI references —
// inside "…", '…', or <…> every byte is semantic and is preserved
// exactly. Leading and trailing whitespace is dropped. Two queries that
// normalize equally differ only in layout and comments, never in
// meaning, so distinct queries cannot collide on a key.
func Normalize(q string) string {
	var b strings.Builder
	b.Grow(len(q))
	const (
		code = iota
		dquote
		squote
		iri
		comment
	)
	state := code
	space := false // a pending collapsed space in code state
	for i := 0; i < len(q); i++ {
		ch := q[i]
		switch state {
		case code:
			switch {
			case ch == '#':
				state = comment
			case ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r':
				space = true
			default:
				if space && b.Len() > 0 {
					b.WriteByte(' ')
				}
				space = false
				b.WriteByte(ch)
				switch ch {
				case '"':
					state = dquote
				case '\'':
					state = squote
				case '<':
					state = iri
				}
			}
		case dquote, squote:
			b.WriteByte(ch)
			if ch == '\\' && i+1 < len(q) {
				i++
				b.WriteByte(q[i])
				continue
			}
			if (state == dquote && ch == '"') || (state == squote && ch == '\'') {
				state = code
			}
		case iri:
			b.WriteByte(ch)
			if ch == '>' {
				state = code
			}
		case comment:
			if ch == '\n' {
				state = code
				space = true
			}
		}
	}
	return b.String()
}
