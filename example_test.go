package inferray_test

import (
	"fmt"
	"sort"

	"inferray"
)

// ExampleReasoner_Select materializes a small RDFS closure and runs a
// SPARQL SELECT with a FILTER and ORDER BY over it.
func ExampleReasoner_Select() {
	r := inferray.New(inferray.WithFragment(inferray.RDFSDefault))
	r.Add("<prof>", inferray.SubClassOf, "<staff>")
	r.Add("<alice>", inferray.Type, "<prof>")
	r.Add("<bob>", inferray.Type, "<staff>")
	if _, err := r.Materialize(); err != nil {
		panic(err)
	}

	rows, err := r.Select(`
SELECT ?who WHERE {
  ?who a <staff> .
  FILTER(?who != <nobody>)
}
ORDER BY ?who`)
	if err != nil {
		panic(err)
	}
	for _, row := range rows {
		fmt.Println(row["who"])
	}
	// Output:
	// <alice>
	// <bob>
}

// ExampleReasoner_QueryFunc streams the solutions of a basic graph
// pattern without materializing a result slice.
func ExampleReasoner_QueryFunc() {
	r := inferray.New(inferray.WithFragment(inferray.RDFSDefault))
	r.Add("<alice>", "<worksFor>", "<acme>")
	r.Add("<bob>", "<worksFor>", "<acme>")
	if _, err := r.Materialize(); err != nil {
		panic(err)
	}

	var who []string
	err := r.QueryFunc(func(row map[string]string) bool {
		who = append(who, row["w"])
		return true // false would stop the enumeration early
	}, [3]string{"?w", "<worksFor>", "<acme>"})
	if err != nil {
		panic(err)
	}
	sort.Strings(who)
	fmt.Println(who)
	// Output:
	// [<alice> <bob>]
}
