package inferray_test

import (
	"bytes"
	"strings"
	"testing"

	"inferray"
)

func TestQuickstartDocExample(t *testing.T) {
	r := inferray.New(inferray.WithFragment(inferray.RDFSDefault))
	mustAdd(t, r, "<human>", inferray.SubClassOf, "<mammal>")
	mustAdd(t, r, "<mammal>", inferray.SubClassOf, "<animal>")
	mustAdd(t, r, "<Bart>", inferray.Type, "<human>")
	stats, err := r.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Holds("<Bart>", inferray.Type, "<animal>") {
		t.Fatal("doc example broken")
	}
	if stats.InputTriples != 3 || stats.InferredTriples != 3 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestAddValidation(t *testing.T) {
	r := inferray.New()
	if err := r.Add("<s>", `"notAnIRI"`, "<o>"); err == nil {
		t.Error("literal predicate must be rejected")
	}
	if err := r.Add(`"literal"`, "<p>", "<o>"); err == nil {
		t.Error("literal subject must be rejected")
	}
	if err := r.Add("_:blank", "<p>", `"a literal"`); err != nil {
		t.Errorf("valid triple rejected: %v", err)
	}
}

func TestNTriplesRoundTripThroughReasoner(t *testing.T) {
	doc := `# taxonomy
<a> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <b> .
<b> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <c> .
<x> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <a> .
`
	r := inferray.New()
	if err := r.LoadNTriples(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Materialize(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteNTriples(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<a> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <c> .",
		"<x> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <c> .",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Re-load our own output: must parse cleanly and be a fixpoint.
	r2 := inferray.New()
	if err := r2.LoadNTriples(strings.NewReader(out)); err != nil {
		t.Fatal(err)
	}
	st2, err := r2.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if st2.InferredTriples != 0 {
		t.Errorf("closure was not a fixpoint: %d new", st2.InferredTriples)
	}
	if st2.TotalTriples != r.Size() {
		t.Errorf("round trip size %d != %d", st2.TotalTriples, r.Size())
	}
}

func TestIncrementalAddThenRematerialize(t *testing.T) {
	r := inferray.New(inferray.WithFragment(inferray.RDFSDefault))
	mustAdd(t, r, "<a>", inferray.SubClassOf, "<b>")
	if _, err := r.Materialize(); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, r, "<b>", inferray.SubClassOf, "<c>")
	if r.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", r.Pending())
	}
	st, err := r.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Incremental {
		t.Fatal("second materialization must run incrementally")
	}
	if !r.Holds("<a>", inferray.SubClassOf, "<c>") {
		t.Fatal("second materialization missed the new chain link")
	}

	// The incremental closure must equal a one-shot closure of the union.
	oneShot := inferray.New(inferray.WithFragment(inferray.RDFSDefault))
	mustAdd(t, oneShot, "<a>", inferray.SubClassOf, "<b>")
	mustAdd(t, oneShot, "<b>", inferray.SubClassOf, "<c>")
	if _, err := oneShot.Materialize(); err != nil {
		t.Fatal(err)
	}
	if oneShot.Size() != r.Size() {
		t.Fatalf("incremental size %d != one-shot size %d", r.Size(), oneShot.Size())
	}
	for _, tr := range oneShot.AllTriples() {
		if !r.Holds(tr.S, tr.P, tr.O) {
			t.Fatalf("incremental closure missing ⟨%s %s %s⟩", tr.S, tr.P, tr.O)
		}
	}
}

// TestSnapshotAfterPromotion: a reasoner whose dictionary tombstoned a
// resource slot (a term later revealed to be a property) must still
// snapshot and restore losslessly.
func TestSnapshotAfterPromotion(t *testing.T) {
	r := inferray.New(inferray.WithFragment(inferray.RDFSDefault))
	mustAdd(t, r, "<x>", "<q>", "<p>") // <p> encoded as a resource
	if _, err := r.Materialize(); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, r, "<p>", inferray.Domain, "<c>") // promotes <p>
	mustAdd(t, r, "<y>", "<p>", "<z>")
	if _, err := r.Materialize(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := r.SaveSnapshot(&buf); err != nil {
		t.Fatalf("SaveSnapshot after promotion: %v", err)
	}
	restored, err := inferray.LoadSnapshot(&buf)
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	if restored.Size() != r.Size() {
		t.Fatalf("restored size %d != %d", restored.Size(), r.Size())
	}
	for _, tr := range r.AllTriples() {
		if !restored.Holds(tr.S, tr.P, tr.O) {
			t.Fatalf("restored snapshot missing ⟨%s %s %s⟩", tr.S, tr.P, tr.O)
		}
	}
}

func TestAllTriplesAndSize(t *testing.T) {
	r := inferray.New()
	mustAdd(t, r, "<a>", inferray.SubClassOf, "<b>")
	if _, err := r.Materialize(); err != nil {
		t.Fatal(err)
	}
	all := r.AllTriples()
	if len(all) != r.Size() {
		t.Fatalf("AllTriples %d != Size %d", len(all), r.Size())
	}
}

func TestParseFragmentFacade(t *testing.T) {
	f, err := inferray.ParseFragment("rdfs-plus")
	if err != nil || f != inferray.RDFSPlus {
		t.Fatalf("got %v, %v", f, err)
	}
}

func mustAdd(t *testing.T, r *inferray.Reasoner, s, p, o string) {
	t.Helper()
	if err := r.Add(s, p, o); err != nil {
		t.Fatal(err)
	}
}

func TestLoadTurtleFacade(t *testing.T) {
	doc := `
@prefix ex: <http://e/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
ex:A rdfs:subClassOf ex:B .
ex:x a ex:A .
`
	r := inferray.New()
	if err := r.LoadTurtle(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Materialize(); err != nil {
		t.Fatal(err)
	}
	if !r.Holds("<http://e/x>", inferray.Type, "<http://e/B>") {
		t.Fatal("turtle-loaded data did not infer")
	}
}
