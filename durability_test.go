package inferray_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"inferray"
	"inferray/internal/datagen"
)

// durOpts: fsync every batch so a simulated crash (dropping the
// reasoner without Close) loses nothing acknowledged.
var durOpts = inferray.DurabilityOptions{Sync: "always"}

func openDurable(t *testing.T, dir string, opts ...inferray.Option) *inferray.Reasoner {
	t.Helper()
	r, err := inferray.Open(append(opts, inferray.WithDurability(dir, durOpts))...)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// sameClosure fails unless both reasoners hold exactly the same triple
// set.
func sameClosure(t *testing.T, got, want *inferray.Reasoner) {
	t.Helper()
	if got.Size() != want.Size() {
		t.Fatalf("closure size %d, want %d", got.Size(), want.Size())
	}
	for _, tr := range want.AllTriples() {
		if !got.Holds(tr.S, tr.P, tr.O) {
			t.Fatalf("closure missing ⟨%s %s %s⟩", tr.S, tr.P, tr.O)
		}
	}
}

// Crash-recovery equivalence at the library level: batches materialized
// into a durable reasoner that is never closed (a crash) must all be
// recovered on reopen, and the recovered closure must equal an
// uninterrupted in-memory run over the same input.
func TestDurableCrashRecoveryEquivalence(t *testing.T) {
	dir := t.TempDir()
	batches := [][][3]string{
		{{"<human>", inferray.SubClassOf, "<mammal>"}, {"<mammal>", inferray.SubClassOf, "<animal>"}},
		{{"<Bart>", inferray.Type, "<human>"}},
		{{"<hasPet>", inferray.Domain, "<human>"}, {"<Lisa>", "<hasPet>", "<cat>"}},
	}

	r := openDurable(t, dir)
	for _, b := range batches {
		for _, tr := range b {
			mustAdd(t, r, tr[0], tr[1], tr[2])
		}
		if _, err := r.Materialize(); err != nil {
			t.Fatal(err)
		}
	}
	crashed := r.Size()
	// Hard stop: no Close, no checkpoint. The WAL alone must carry it.

	recovered := openDurable(t, dir)
	defer recovered.Close()
	ds, ok := recovered.DurabilityStats()
	if !ok {
		t.Fatal("durable reasoner reports no durability stats")
	}
	if ds.RecoveredFromSnapshot || ds.ReplayedRecords != len(batches) {
		t.Fatalf("recovery stats: %+v", ds)
	}
	if recovered.Size() != crashed {
		t.Fatalf("recovered %d triples, crashed with %d", recovered.Size(), crashed)
	}

	uninterrupted := inferray.New()
	for _, b := range batches {
		for _, tr := range b {
			mustAdd(t, uninterrupted, tr[0], tr[1], tr[2])
		}
	}
	if _, err := uninterrupted.Materialize(); err != nil {
		t.Fatal(err)
	}
	sameClosure(t, recovered, uninterrupted)

	// And the recovered reasoner keeps absorbing durable deltas.
	mustAdd(t, recovered, "<Maggie>", inferray.Type, "<human>")
	if _, err := recovered.Materialize(); err != nil {
		t.Fatal(err)
	}
	if !recovered.Holds("<Maggie>", inferray.Type, "<animal>") {
		t.Fatal("post-recovery delta not materialized")
	}
}

// Checkpoint writes an image, truncates the log, and recovery then
// loads the image and replays only post-checkpoint batches.
func TestDurableCheckpointAndRecover(t *testing.T) {
	dir := t.TempDir()
	r := openDurable(t, dir)
	mustAdd(t, r, "<a>", inferray.SubClassOf, "<b>")
	mustAdd(t, r, "<b>", inferray.SubClassOf, "<c>")
	if _, err := r.Materialize(); err != nil {
		t.Fatal(err)
	}
	info, err := r.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation != 1 || info.Triples != r.StoredSize() || info.SnapshotBytes == 0 {
		t.Fatalf("checkpoint info: %+v", info)
	}
	if ds, _ := r.DurabilityStats(); ds.WALRecords != 0 || ds.Generation != 1 {
		t.Fatalf("post-checkpoint stats: %+v", ds)
	}
	mustAdd(t, r, "<x>", inferray.Type, "<a>")
	if _, err := r.Materialize(); err != nil {
		t.Fatal(err)
	}
	want := r.Size()
	// Crash.

	r2 := openDurable(t, dir)
	defer r2.Close()
	ds, _ := r2.DurabilityStats()
	if !ds.RecoveredFromSnapshot || ds.RecoveredGeneration != 1 || ds.ReplayedRecords != 1 {
		t.Fatalf("recovery stats: %+v", ds)
	}
	if r2.Size() != want {
		t.Fatalf("recovered %d triples, want %d", r2.Size(), want)
	}
	if !r2.Holds("<x>", inferray.Type, "<c>") {
		t.Fatal("recovered closure lost an inference")
	}
}

// Automatic rotation: crossing the record threshold checkpoints without
// an explicit call.
func TestDurableAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	r, err := inferray.Open(inferray.WithDurability(dir, inferray.DurabilityOptions{
		Sync:              "always",
		CheckpointRecords: 2,
		CheckpointBytes:   -1,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 3; i++ {
		mustAdd(t, r, fmt.Sprintf("<s%d>", i), inferray.Type, "<c>")
		if _, err := r.Materialize(); err != nil {
			t.Fatal(err)
		}
	}
	ds, _ := r.DurabilityStats()
	if ds.Generation == 0 {
		t.Fatalf("no automatic checkpoint ran: %+v", ds)
	}
	if ds.CheckpointError != "" {
		t.Fatalf("auto checkpoint failed: %s", ds.CheckpointError)
	}
}

// A corrupted WAL tail record fails its CRC on recovery and is
// truncated: the survivors are replayed, the garbage never applied.
func TestDurableCorruptTailTruncated(t *testing.T) {
	dir := t.TempDir()
	r := openDurable(t, dir)
	mustAdd(t, r, "<a>", inferray.SubClassOf, "<b>")
	if _, err := r.Materialize(); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, r, "<evil>", inferray.Type, "<b>")
	if _, err := r.Materialize(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	logs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(logs) != 1 {
		t.Fatalf("wal files: %v, %v", logs, err)
	}
	data, err := os.ReadFile(logs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x20
	if err := os.WriteFile(logs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	r2 := openDurable(t, dir)
	defer r2.Close()
	ds, _ := r2.DurabilityStats()
	if !ds.TruncatedTail || ds.ReplayedRecords != 1 {
		t.Fatalf("corrupt-tail recovery stats: %+v", ds)
	}
	if r2.Holds("<evil>", inferray.Type, "<b>") {
		t.Fatal("corrupted record was replayed")
	}
	if !r2.Holds("<a>", inferray.SubClassOf, "<b>") {
		t.Fatal("surviving record lost")
	}
}

// In-memory reasoners reject Checkpoint and report no durability.
func TestNotDurable(t *testing.T) {
	r := inferray.New()
	if _, err := r.Checkpoint(); err != inferray.ErrNotDurable {
		t.Fatalf("Checkpoint on in-memory reasoner: %v", err)
	}
	if _, ok := r.DurabilityStats(); ok || r.Durable() {
		t.Fatal("in-memory reasoner claims durability")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("New with WithDurability did not panic")
		}
	}()
	inferray.New(inferray.WithDurability(t.TempDir(), inferray.DurabilityOptions{}))
}

// Satellite: snapshot round-trip over a dictionary with tombstoned
// slots from PromoteToProperty — write, read, materialize a delta that
// itself promotes another term, and compare the closure against a
// never-snapshotted reasoner fed the identical sequence.
func TestSnapshotTombstoneDeltaEquivalence(t *testing.T) {
	load := func(r *inferray.Reasoner, phase int) {
		t.Helper()
		switch phase {
		case 0: // <p> and <q> first seen as plain resources
			mustAdd(t, r, "<x>", "<rel>", "<p>")
			mustAdd(t, r, "<y>", "<rel>", "<q>")
		case 1: // schema triple promotes <p>: its resource slot tombstones
			mustAdd(t, r, "<p>", inferray.Domain, "<C>")
			mustAdd(t, r, "<u>", "<p>", "<v>")
		case 2: // delta after restore: promotes <q> against the restored dict
			mustAdd(t, r, "<q>", inferray.SubPropertyOf, "<p>")
			mustAdd(t, r, "<w>", "<q>", "<z>")
		}
		if _, err := r.Materialize(); err != nil {
			t.Fatal(err)
		}
	}

	snapshotted := inferray.New()
	load(snapshotted, 0)
	load(snapshotted, 1)

	var buf bytes.Buffer
	if err := snapshotted.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := inferray.LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	load(restored, 2)

	straight := inferray.New()
	load(straight, 0)
	load(straight, 1)
	load(straight, 2)

	sameClosure(t, restored, straight)
	// The delta's promotion must also answer through the restored dict.
	if !restored.Holds("<w>", "<p>", "<z>") {
		t.Fatal("restored reasoner missed subPropertyOf inference over promoted terms")
	}
}

// ------------------------------------------------------------ benchmarks
//
// The EXPERIMENTS.md §durability timings come from these three:
// snapshot write, WAL replay, and full cold recovery (image + tail).

// benchDataset materializes a LUBM-like load into a durable reasoner
// rooted at dir, split into nBatches WAL records.
func benchDataset(b *testing.B, dir string, triples int, nBatches int) *inferray.Reasoner {
	b.Helper()
	r, err := inferray.Open(inferray.WithDurability(dir, inferray.DurabilityOptions{
		Sync:              "none", // measure the engine, not the disk cache
		CheckpointRecords: -1,
		CheckpointBytes:   -1,
	}))
	if err != nil {
		b.Fatal(err)
	}
	data := datagen.LUBM(triples, 7)
	per := (len(data) + nBatches - 1) / nBatches
	for i := 0; i < len(data); i += per {
		end := i + per
		if end > len(data) {
			end = len(data)
		}
		r.AddTriples(data[i:end])
		if _, err := r.Materialize(); err != nil {
			b.Fatal(err)
		}
	}
	return r
}

// BenchmarkSnapshotWrite measures Checkpoint: image write (under the
// read lock) + WAL rotation, on a ~100k-triple closure.
func BenchmarkSnapshotWrite(b *testing.B) {
	dir := b.TempDir()
	r := benchDataset(b, dir, 100_000, 4)
	defer r.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		info, err := r.Checkpoint()
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(info.SnapshotBytes)
	}
	b.ReportMetric(float64(r.Size()), "triples")
}

// BenchmarkWALReplay measures recovery when everything is in the log:
// no snapshot, replay b.N× the full WAL through the incremental path.
func BenchmarkWALReplay(b *testing.B) {
	dir := b.TempDir()
	r := benchDataset(b, dir, 100_000, 8)
	size := r.Size()
	if err := r.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r2, err := inferray.Open(inferray.WithDurability(dir, inferray.DurabilityOptions{Sync: "none"}))
		if err != nil {
			b.Fatal(err)
		}
		if r2.Size() != size {
			b.Fatalf("replayed %d triples, want %d", r2.Size(), size)
		}
		r2.Close()
	}
	b.ReportMetric(float64(size), "triples")
}

// BenchmarkColdRecovery measures the common restart: a checkpoint image
// plus a short WAL tail.
func BenchmarkColdRecovery(b *testing.B) {
	dir := b.TempDir()
	r := benchDataset(b, dir, 100_000, 4)
	if _, err := r.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	// A small tail on top of the image.
	r.AddTriples(datagen.LUBM(5_000, 11))
	if _, err := r.Materialize(); err != nil {
		b.Fatal(err)
	}
	size := r.Size()
	if err := r.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r2, err := inferray.Open(inferray.WithDurability(dir, inferray.DurabilityOptions{Sync: "none"}))
		if err != nil {
			b.Fatal(err)
		}
		if r2.Size() != size {
			b.Fatalf("recovered %d triples, want %d", r2.Size(), size)
		}
		r2.Close()
	}
	b.ReportMetric(float64(size), "triples")
}

// An image is a closure only under its own ruleset: loading it under a
// different fragment must be refused, both for image files and for
// durable data dirs.
func TestImageFragmentMismatch(t *testing.T) {
	img := filepath.Join(t.TempDir(), "c.img")
	r := inferray.New(inferray.WithFragment(inferray.RDFSPlus))
	mustAdd(t, r, "<a>", inferray.SameAs, "<b>")
	if _, err := r.Materialize(); err != nil {
		t.Fatal(err)
	}
	if err := r.SaveImage(img); err != nil {
		t.Fatal(err)
	}

	if _, err := inferray.LoadImage(img); err == nil || !strings.Contains(err.Error(), "fragment") {
		t.Fatalf("cross-fragment image load: %v", err)
	}
	r2, err := inferray.LoadImage(img, inferray.WithFragment(inferray.RDFSPlus))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Size() != r.Size() || !r2.Holds("<b>", inferray.SameAs, "<a>") {
		t.Fatal("matching-fragment image load lost the closure")
	}
}

func TestDurableFragmentMismatch(t *testing.T) {
	dir := t.TempDir()
	r, err := inferray.Open(
		inferray.WithFragment(inferray.RDFSPlus),
		inferray.WithDurability(dir, durOpts),
	)
	if err != nil {
		t.Fatal(err)
	}
	mustAdd(t, r, "<a>", inferray.SubClassOf, "<b>")
	if _, err := r.Materialize(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := inferray.Open(inferray.WithDurability(dir, durOpts)); err == nil ||
		!strings.Contains(err.Error(), "fragment") {
		t.Fatalf("cross-fragment durable recovery: %v", err)
	}
	r2, err := inferray.Open(
		inferray.WithFragment(inferray.RDFSPlus),
		inferray.WithDurability(dir, durOpts),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if !r2.Holds("<a>", inferray.SubClassOf, "<b>") {
		t.Fatal("matching-fragment recovery lost the closure")
	}
}
