package inferray_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"inferray"
	"inferray/internal/sparql"
)

// TestUpdateInsertDeleteRoundTrip drives the full bidirectional write
// path through SPARQL UPDATE text: insert, verify the closure grew,
// delete, verify the consequences are maintained away.
func TestUpdateInsertDeleteRoundTrip(t *testing.T) {
	r := inferray.New()
	st, err := r.Update(`INSERT DATA {
		<human> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <mammal> .
		<mammal> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <animal> .
		<Bart> a <human>
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ops != 1 || st.Inserted != 3 {
		t.Fatalf("stats = %+v, want 1 op / 3 inserted", st)
	}
	if !r.Holds("<Bart>", inferray.Type, "<animal>") {
		t.Fatal("closure missing ⟨Bart type animal⟩ after INSERT DATA")
	}

	st, err = r.Update(`DELETE DATA { <mammal> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <animal> }`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Deleted != 1 {
		t.Fatalf("stats = %+v, want 1 deleted", st)
	}
	if r.Holds("<Bart>", inferray.Type, "<animal>") {
		t.Fatal("⟨Bart type animal⟩ survived deleting its supporting schema edge")
	}
	if !r.Holds("<Bart>", inferray.Type, "<mammal>") {
		t.Fatal("⟨Bart type mammal⟩ was lost; it does not depend on the deleted edge")
	}
}

// TestUpdateDeleteWhere checks pattern-driven retraction: asserted
// matches go, derived-only matches are no-ops, and matching + deletion
// see the closure (virtual triples included).
func TestUpdateDeleteWhere(t *testing.T) {
	r := inferray.New()
	if _, err := r.Update(`INSERT DATA {
		<a> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <b> .
		<b> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <c> .
		<x> a <a> . <y> a <a> . <z> a <b>
	}`); err != nil {
		t.Fatal(err)
	}
	// Matches both asserted (x/y/z typed directly) and derived type
	// triples; only the asserted ones are retractions, and retracting
	// them removes the derivations too.
	st, err := r.Update(`DELETE WHERE { ?i a <a> }`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Deleted != 2 {
		t.Fatalf("deleted = %d, want 2 (x and y)", st.Deleted)
	}
	for _, s := range []string{"<x>", "<y>"} {
		for _, c := range []string{"<a>", "<b>", "<c>"} {
			if r.Holds(s, inferray.Type, c) {
				t.Errorf("⟨%s type %s⟩ survived DELETE WHERE", s, c)
			}
		}
	}
	if !r.Holds("<z>", inferray.Type, "<c>") {
		t.Error("⟨z type c⟩ was lost; z's typing does not match the pattern")
	}
	// A pattern matching only derived triples deletes nothing.
	st, err = r.Update(`DELETE WHERE { <z> a <c> }`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Deleted != 0 {
		t.Fatalf("deleting a derived-only triple reported %d deletions", st.Deleted)
	}
	if !r.Holds("<z>", inferray.Type, "<c>") {
		t.Error("derived ⟨z type c⟩ vanished on a no-op delete")
	}
}

// TestUpdateOpSequence: operations run in order within one request.
func TestUpdateOpSequence(t *testing.T) {
	r := inferray.New()
	st, err := r.Update(`
		PREFIX ex: <http://e/>
		INSERT DATA { ex:s ex:p ex:o } ;
		DELETE DATA { ex:s ex:p ex:o } ;
		INSERT DATA { ex:s ex:p ex:o2 }`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ops != 3 || st.Inserted != 2 || st.Deleted != 1 {
		t.Fatalf("stats = %+v, want 3 ops / 2 inserted / 1 deleted", st)
	}
	if r.Holds("<http://e/s>", "<http://e/p>", "<http://e/o>") {
		t.Error("deleted triple still visible")
	}
	if !r.Holds("<http://e/s>", "<http://e/p>", "<http://e/o2>") {
		t.Error("re-inserted triple missing")
	}
}

// TestUpdateParseError: failures surface as positioned parse errors and
// leave the closure untouched.
func TestUpdateParseError(t *testing.T) {
	r := inferray.New()
	mustAdd(t, r, "<s>", "<p>", "<o>")
	if _, err := r.Materialize(); err != nil {
		t.Fatal(err)
	}
	before := r.Size()
	_, err := r.Update(`DELETE { ?s ?p ?o } WHERE { ?s ?p ?o }`)
	var pe *sparql.ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *sparql.ParseError", err)
	}
	if !strings.Contains(err.Error(), "only DELETE DATA and DELETE WHERE are supported") {
		t.Errorf("err = %v", err)
	}
	if r.Size() != before {
		t.Error("failed update changed the closure")
	}
}

// TestUpdateDurableReplay: a durable reasoner that crashes (never
// closed) after interleaved updates recovers to exactly the closure an
// uninterrupted in-memory run holds — deletions included, which means
// the WAL's delete records replayed.
func TestUpdateDurableReplay(t *testing.T) {
	dir := t.TempDir()
	ops := []string{
		`INSERT DATA {
			<a> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <b> .
			<b> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <c> .
			<x> a <a> . <y> a <b> . <s> <p> <o>
		}`,
		`DELETE DATA { <x> a <a> }`,
		`INSERT DATA { <x> a <b> }`,
		`DELETE WHERE { ?i a <b> }`,
	}

	r := openDurable(t, dir)
	mem := inferray.New()
	for _, op := range ops {
		if _, err := r.Update(op); err != nil {
			t.Fatal(err)
		}
		if _, err := mem.Update(op); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: drop r without Close. Sync "always" means every
	// acknowledged record is on disk.
	r2 := openDurable(t, dir)
	defer r2.Close()
	sameClosure(t, r2, mem)

	// The recovered reasoner keeps accepting updates.
	if _, err := r2.Update(`DELETE DATA { <s> <p> <o> }`); err != nil {
		t.Fatal(err)
	}
	if r2.Holds("<s>", "<p>", "<o>") {
		t.Error("post-recovery delete did not apply")
	}
}

// TestUpdateDurableCheckpointed: deletions survive through a checkpoint
// image (the asserted record rides the snapshot), not just WAL replay.
func TestUpdateDurableCheckpointed(t *testing.T) {
	dir := t.TempDir()
	r := openDurable(t, dir)
	if _, err := r.Update(`INSERT DATA {
		<a> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <b> .
		<x> a <a> . <y> a <a>
	}`); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Update(`DELETE DATA { <y> a <a> }`); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint delete lands in the fresh WAL and must replay on
	// top of the image's asserted record.
	if _, err := r.Update(`DELETE DATA { <x> a <a> }`); err != nil {
		t.Fatal(err)
	}

	r2 := openDurable(t, dir)
	defer r2.Close()
	for _, s := range []string{"<x>", "<y>"} {
		if r2.Holds(s, inferray.Type, "<a>") || r2.Holds(s, inferray.Type, "<b>") {
			t.Errorf("recovered closure still types %s", s)
		}
	}
	if !r2.Holds("<a>", inferray.SubClassOf, "<b>") {
		t.Error("recovered closure lost the schema edge")
	}
}

// TestUpdateMigratesV1Log: a data directory written by an older build
// holds a version-1 log, which cannot record deletions. Open must
// replay it, checkpoint away from it immediately, and then accept
// deletes.
func TestUpdateMigratesV1Log(t *testing.T) {
	dir := t.TempDir()
	// Hand-write a v1 log (no op-kind byte in records) holding one add.
	payload := []byte("<x> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <c> .\n")
	var buf bytes.Buffer
	head := make([]byte, 16)
	copy(head[:4], "IFWL")
	binary.LittleEndian.PutUint32(head[4:], 1) // version 1
	binary.LittleEndian.PutUint64(head[8:], 0) // generation 0
	buf.Write(head)
	rec := make([]byte, 8)
	binary.LittleEndian.PutUint32(rec[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:], crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)))
	buf.Write(rec)
	buf.Write(payload)
	logPath := filepath.Join(dir, "wal-0000000000000000.log")
	if err := os.WriteFile(logPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	r := openDurable(t, dir)
	defer r.Close()
	if !r.Holds("<x>", inferray.Type, "<c>") {
		t.Fatal("v1 log record did not replay")
	}
	// Migration rotated to a fresh generation: the v1 file is gone.
	if _, err := os.Stat(logPath); !os.IsNotExist(err) {
		t.Fatalf("v1 log still present after migration (stat err = %v)", err)
	}
	// And deletes — which a v1 log could not record — now work end to
	// end, crash replay included.
	if _, err := r.Update(`DELETE DATA { <x> a <c> }`); err != nil {
		t.Fatal(err)
	}
	r2 := openDurable(t, dir)
	defer r2.Close()
	if r2.Holds("<x>", inferray.Type, "<c>") {
		t.Fatal("delete lost across recovery")
	}
}
